"""Simulation engines — and how to pick one.

Four substrates execute the same protocols; they differ in what they store
per round and therefore in where they are fast:

``vectorized`` (:func:`repro.engine.vectorized.simulate`)
    One value per process, one NumPy pass per round: O(n) time and memory per
    round.  The default.  Use it whenever n is laptop-sized (up to ~10⁷),
    when you need per-process trajectories, sample-path couplings, custom
    rules without count-space kernels, or custom identity-tracking
    adversaries.

``occupancy`` (:func:`repro.engine.occupancy.simulate_occupancy`)
    One count per distinct value, one multinomial scatter per round: O(m²)
    time, **independent of n**.  Statistically exact (equal in law to the
    vectorized engine — pinned by the ``tests/equivalence.py`` harness via
    ``tests/test_engine_differential.py``), so use it for very large
    populations with few values (n = 10⁸–10⁹, m up to a few thousand).
    Limits: rules need a count-space kernel (median, median-k,
    median-noreplace, voter, minimum, maximum, three-majority,
    two-choices-majority) and adversaries a count-edit form — every shipped
    strategy has one, the identity-tracking pair (sticky, hiding) through
    exact victim-*occupancy* tracking, which costs one extra multinomial
    scatter per round (~2× the no-adversary round, still n-independent);
    per-ball quantities (gravity, per-process trajectories) are unavailable.

``batch`` (:func:`repro.engine.batch.run_batch` / :func:`~repro.engine.batch.run_batch_fused` / :func:`~repro.engine.batch.run_batch_fused_occupancy`)
    Monte-Carlo over independent runs.  ``run_batch`` repeats any single-run
    engine (select with ``engine="vectorized" | "occupancy" |
    "occupancy-fused"``); ``run_batch_fused`` packs R median-rule runs into
    one (R, n) array program and is the fastest way to get convergence-round
    distributions at moderate n.  ``run_batch_fused_occupancy``
    (``engine="occupancy-fused"``) is the count-space analogue: all R runs
    advance as one (R, m) count tensor, each round building a stacked
    (R, m, m) outcome tensor and drawing all R·m multinomials in a single
    call.  Cost model: O(R·m²) time per round **independent of n** and
    O(R·m² · 8 bytes) peak memory (chunked over runs beyond ~134 MB), versus
    O(R·m²) time *plus O(R) interpreter round trips* for the looped
    occupancy path — the fused engine wins by an order of magnitude once R is
    in the hundreds (``benchmarks/bench_batch_fused.py``), and by far more at
    large n against the (R, n) value-space engines.

    Supported rule/adversary matrix of the occupancy substrates (single-run
    and fused alike):

    =================  =========================================================
    rules              median, median-k (any k), median-noreplace, voter,
                       minimum, maximum, three-majority (majority of three
                       polled processes), two-choices-majority (adopt iff two
                       samples agree), or any rule defining
                       ``occupancy_kernel(support, counts)``
    adversaries        every shipped strategy: null, balancing, reviving,
                       switching, random, targeted-median (count-edit forms
                       via ``Adversary.corrupt_counts``) **and** the
                       identity-tracking pair sticky / hiding (exact
                       victim-occupancy forms: the engine scatters the victim
                       subpopulation separately — one extra multinomial pass
                       per round, cost ~2× the no-adversary round, still
                       independent of n).  Custom adversaries without a
                       ``propose_counts`` override stay vectorized-only.
    =================  =========================================================

    ``run_batch(engine="occupancy-fused")`` checks the pair up front and
    falls back to the looped occupancy path when records/results are
    requested; sweep builders resolve unsupported cells to ``"vectorized"``
    before any work is spent (:data:`repro.engine.batch.COUNT_ADVERSARIES`,
    :func:`repro.engine.batch.fused_occupancy_cell_supported`).

``network`` (:class:`repro.network.simulator.NetworkSimulator`)
    Agent-level message passing with explicit topologies, schedulers and
    per-node inboxes.  Orders of magnitude slower; use it only to validate
    protocol semantics, asynchrony, or non-complete communication graphs
    (small n).

Rule of thumb: protocol semantics → network; n ≤ 10⁷ or exotic
rules/adversaries → vectorized (batch/fused for distributions); n beyond that
with modest m → occupancy; convergence-round *distributions* at any n with
modest m → occupancy-fused.

Multinomial kernel backend (the m ≥ 64 wall)
--------------------------------------------
Every occupancy substrate bottoms out in exact multinomial scatters, drawn
through one seam (:mod:`repro.engine._multinomial`) with two backends:

=============  ============================================================
``numpy``      ``Generator.multinomial`` — the historical bit stream; every
               seed-pinned golden result was produced on it.
``compiled``   conditional-binomial cascade in native code (numba if
               importable, else a C kernel compiled on first use), plus a
               pooled *banded* sampler that scatters a built-in rule's whole
               run with O(m) draws instead of O(m²).
=============  ============================================================

Selection is ``auto`` (compiled when available, else NumPy with one
structured warning): force or pin with ``REPRO_MULTINOMIAL_KERNEL=
{auto,compiled,numpy,numba,cc}`` or
:func:`repro.engine.rng.set_multinomial_backend`; check what actually runs
with :func:`repro.engine.rng.multinomial_kernel_id` (also stamped into
store provenance, shown by ``repro store info``).  Expected effect: at
m ≤ 32 the dense rounds are cheap and fusion already wins, so the backend
barely matters; at m = 64 the compiled banded path is what restores the
≥10× fused-vs-looped gap (``benchmarks/bench_multinomial.py`` /
``BENCH_multinomial.json``).  Reproducibility is backend-scoped: identical
seeds give identical results only within one backend; across backends the
engines agree in distribution (certified by
``tests/test_engine_differential.py`` and ``tests/test_multinomial_seam.py``).
"""

from repro.engine.asynchronous import ACTIVATION_ORDERS, AsyncResult, simulate_asynchronous
from repro.engine.batch import (
    BATCH_ENGINES,
    COUNT_ADVERSARIES,
    ENGINES,
    BatchResult,
    fused_occupancy_cell_supported,
    run_batch,
    run_batch_fused,
    run_batch_fused_occupancy,
)
from repro.engine.occupancy import (
    occupancy_outcome_profiles,
    occupancy_round,
    occupancy_round_batch,
    occupancy_transition_matrix,
    occupancy_transition_matrix_batch,
    simulate_occupancy,
)
from repro.engine.parallel import WorkItem, execute_work_items, recommended_workers
from repro.engine.rng import (
    KernelInfo,
    MultinomialKernelWarning,
    RngPool,
    make_rng,
    multinomial_backend_info,
    multinomial_kernel_id,
    resolve_multinomial_backend,
    set_multinomial_backend,
    spawn_rngs,
    spawn_seeds,
)
from repro.engine.run import SimulationResult
from repro.engine.trajectory import RecordLevel, Trajectory, TrajectoryRecorder
from repro.engine.vectorized import EngineConfig, default_max_rounds, simulate

__all__ = [
    "simulate",
    "simulate_occupancy",
    "simulate_asynchronous",
    "AsyncResult",
    "ACTIVATION_ORDERS",
    "EngineConfig",
    "default_max_rounds",
    "SimulationResult",
    "BatchResult",
    "run_batch",
    "run_batch_fused",
    "run_batch_fused_occupancy",
    "fused_occupancy_cell_supported",
    "ENGINES",
    "BATCH_ENGINES",
    "COUNT_ADVERSARIES",
    "occupancy_round",
    "occupancy_round_batch",
    "occupancy_outcome_profiles",
    "occupancy_transition_matrix",
    "occupancy_transition_matrix_batch",
    "KernelInfo",
    "MultinomialKernelWarning",
    "multinomial_backend_info",
    "multinomial_kernel_id",
    "resolve_multinomial_backend",
    "set_multinomial_backend",
    "WorkItem",
    "execute_work_items",
    "recommended_workers",
    "RecordLevel",
    "Trajectory",
    "TrajectoryRecorder",
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "RngPool",
]
