"""Simulation engines: vectorized single runs, fused batches, parallel sweeps."""

from repro.engine.asynchronous import ACTIVATION_ORDERS, AsyncResult, simulate_asynchronous
from repro.engine.batch import BatchResult, run_batch, run_batch_fused
from repro.engine.parallel import WorkItem, execute_work_items, recommended_workers
from repro.engine.rng import RngPool, make_rng, spawn_rngs, spawn_seeds
from repro.engine.run import SimulationResult
from repro.engine.trajectory import RecordLevel, Trajectory, TrajectoryRecorder
from repro.engine.vectorized import EngineConfig, default_max_rounds, simulate

__all__ = [
    "simulate",
    "simulate_asynchronous",
    "AsyncResult",
    "ACTIVATION_ORDERS",
    "EngineConfig",
    "default_max_rounds",
    "SimulationResult",
    "BatchResult",
    "run_batch",
    "run_batch_fused",
    "WorkItem",
    "execute_work_items",
    "recommended_workers",
    "RecordLevel",
    "Trajectory",
    "TrajectoryRecorder",
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "RngPool",
]
