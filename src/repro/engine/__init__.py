"""Simulation engines — and how to pick one.

Four substrates execute the same protocols; they differ in what they store
per round and therefore in where they are fast:

``vectorized`` (:func:`repro.engine.vectorized.simulate`)
    One value per process, one NumPy pass per round: O(n) time and memory per
    round.  The default.  Use it whenever n is laptop-sized (up to ~10⁷),
    when you need per-process trajectories, sample-path couplings, or any
    adversary — including the identity-tracking ones (sticky, hiding).

``occupancy`` (:func:`repro.engine.occupancy.simulate_occupancy`)
    One count per distinct value, one multinomial scatter per round: O(m²)
    time, **independent of n**.  Statistically exact (equal in law to the
    vectorized engine — pinned by ``tests/test_engine_differential.py``), so
    use it for very large populations with few values (n = 10⁸–10⁹, m up to
    a few thousand).  Limits: rules need a count-space kernel (median,
    median-k, median-noreplace, voter, minimum, maximum) and adversaries must
    be expressible as count edits (balancing, reviving, switching, random,
    targeted-median — not sticky/hiding); per-ball quantities (gravity,
    per-process trajectories) are unavailable.

``batch`` (:func:`repro.engine.batch.run_batch` / :func:`~repro.engine.batch.run_batch_fused`)
    Monte-Carlo over independent runs.  ``run_batch`` repeats any single-run
    engine (select with ``engine="vectorized" | "occupancy"``); the fused
    variant packs R median-rule runs into one (R, n) array program and is the
    fastest way to get convergence-round distributions at moderate n.

``network`` (:class:`repro.network.simulator.NetworkSimulator`)
    Agent-level message passing with explicit topologies, schedulers and
    per-node inboxes.  Orders of magnitude slower; use it only to validate
    protocol semantics, asynchrony, or non-complete communication graphs
    (small n).

Rule of thumb: protocol semantics → network; n ≤ 10⁷ or exotic
rules/adversaries → vectorized (batch/fused for distributions); n beyond that
with modest m → occupancy.
"""

from repro.engine.asynchronous import ACTIVATION_ORDERS, AsyncResult, simulate_asynchronous
from repro.engine.batch import ENGINES, BatchResult, run_batch, run_batch_fused
from repro.engine.occupancy import (
    occupancy_round,
    occupancy_transition_matrix,
    simulate_occupancy,
)
from repro.engine.parallel import WorkItem, execute_work_items, recommended_workers
from repro.engine.rng import RngPool, make_rng, spawn_rngs, spawn_seeds
from repro.engine.run import SimulationResult
from repro.engine.trajectory import RecordLevel, Trajectory, TrajectoryRecorder
from repro.engine.vectorized import EngineConfig, default_max_rounds, simulate

__all__ = [
    "simulate",
    "simulate_occupancy",
    "simulate_asynchronous",
    "AsyncResult",
    "ACTIVATION_ORDERS",
    "EngineConfig",
    "default_max_rounds",
    "SimulationResult",
    "BatchResult",
    "run_batch",
    "run_batch_fused",
    "ENGINES",
    "occupancy_round",
    "occupancy_transition_matrix",
    "WorkItem",
    "execute_work_items",
    "recommended_workers",
    "RecordLevel",
    "Trajectory",
    "TrajectoryRecorder",
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "RngPool",
]
