"""Batched Monte-Carlo simulation.

Experiments need distributions of convergence times, not single runs.  Three
batching strategies are provided:

* :func:`run_batch` — repeat a single-run engine
  (:func:`repro.engine.vectorized.simulate` or
  :func:`repro.engine.occupancy.simulate_occupancy`) over independent seeds.
  Flexible (any rule, any adversary, full result records) but pays the
  per-run Python overhead — which *dominates* for the occupancy engine, whose
  O(m²) kernel is far cheaper than one interpreter round trip.

* :func:`run_batch_fused` — simulate ``R`` independent *median-rule* runs in
  one array program of shape ``(R, n)``: each round draws an ``(R, n, 2)``
  sample tensor and applies the median kernel to all runs simultaneously.
  This amortizes the per-round Python overhead across runs and is the engine
  behind the large sweeps in the Figure-1 benchmark.  It supports the
  balancing adversary and the null adversary (the two needed for the paper's
  tables); other adversaries automatically fall back to :func:`run_batch`.

* :func:`run_batch_fused_occupancy` — the multi-run analogue of the occupancy
  engine: state is one ``(R, m)`` count tensor, each round builds the stacked
  ``(R, m, m)`` outcome tensor and draws all ``R·m`` multinomials in a single
  reshaped call.  O(R·m²) per round with **no dependence on n** and no
  per-run Python loop, so convergence-round distributions at n = 10⁶–10⁹ cost
  the same as at n = 10⁴.  Selected as ``run_batch(engine="occupancy-fused")``.

All three return a :class:`BatchResult` with convergence-round statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.adversary.base import Adversary, AdversaryTiming, NullAdversary
from repro.adversary.strategies import ADVERSARY_REGISTRY, BalancingAdversary
from repro.core.consensus import AlmostStableCriterion
from repro.core.median_rule import MedianRule, median_of_three
from repro.core.occupancy_state import OccupancyState
from repro.core.rules import Rule
from repro.core.state import Configuration
from repro.engine.occupancy import (
    MAX_SUPPORT_DEFAULT,
    OCCUPANCY_KERNEL_RULE_TYPES,
    OCCUPANCY_RULES,
    _as_occupancy,
    occupancy_round_batch,
    occupancy_round_batch_split,
    simulate_occupancy,
)
from repro.engine.rng import spawn_rngs
from repro.engine.run import SimulationResult
from repro.engine.trajectory import RecordLevel
from repro.engine.vectorized import default_max_rounds, simulate

__all__ = [
    "BatchResult",
    "run_batch",
    "run_batch_fused",
    "run_batch_fused_occupancy",
    "fused_occupancy_cell_supported",
    "ENGINES",
    "BATCH_ENGINES",
    "COUNT_ADVERSARIES",
]

#: Single-run engines selectable by name (``run_batch(engine=...)``,
#: ``ExperimentConfig.engine``, ``repro-consensus simulate --engine``).
ENGINES = {
    "vectorized": simulate,
    "occupancy": simulate_occupancy,
}

#: Engine names accepted by the *batch* layer (``run_batch`` /
#: ``ExperimentConfig`` / ``repro-consensus sweep --engine``): the single-run
#: engines plus the fused multi-run occupancy engine, which has no single-run
#: form.
BATCH_ENGINES = tuple(ENGINES) + ("occupancy-fused",)

#: Adversary registry names with an exact count-space (``corrupt_counts``)
#: form — the ones able to drive the occupancy engines.  Classified by the
#: same override check :attr:`~repro.adversary.base.Adversary.supports_counts`
#: uses (no instantiation, so constructors with extra required arguments stay
#: importable).  Every shipped strategy qualifies: the identity-tracking ones
#: (sticky, hiding) through their exact victim-*occupancy* form (the engines
#: scatter the victim subpopulation separately each round); only custom
#: adversaries without a ``propose_counts`` override fall out.
COUNT_ADVERSARIES = frozenset(
    name for name, cls in ADVERSARY_REGISTRY.items()
    if cls is None or cls.propose_counts is not Adversary.propose_counts
)


def fused_occupancy_cell_supported(rule_name: str, adversary_name: str = "null",
                                   n: Optional[int] = None,
                                   m: Optional[int] = None) -> bool:
    """Name-level support check for the fused occupancy batch engine.

    True iff a cell with this rule/adversary registry pair can run on
    ``engine="occupancy-fused"`` — used by the sweep builders and the runner
    to fall back to the looped :func:`run_batch` path *before* any work is
    spent.  When the cell's geometry is known, pass ``n`` and ``m``: the
    occupancy substrate costs O(m²) per round versus the vectorized engine's
    O(n), so wide supports (``m² ≫ n``, e.g. the all-distinct workload where
    m = n) are reported unsupported even though the kernels exist — and
    ``m > MAX_SUPPORT_DEFAULT`` would refuse to allocate its transition
    tensor outright.
    """
    if rule_name not in OCCUPANCY_RULES or adversary_name not in COUNT_ADVERSARIES:
        return False
    if m is not None and m > 0:
        if m > MAX_SUPPORT_DEFAULT:
            return False
        if n is not None and m * m > 4 * n:
            return False
    return True


@dataclass
class BatchResult:
    """Aggregate of a batch of independent runs.

    ``rounds`` holds one entry per run: the convergence round (exact consensus
    round without an adversary, almost-stable round with one), or ``NaN`` if
    the run did not converge within its horizon.
    """

    n: int
    num_runs: int
    rounds: np.ndarray
    converged: np.ndarray
    results: List[SimulationResult] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def convergence_fraction(self) -> float:
        """Fraction of runs that converged within the horizon."""
        return float(np.mean(self.converged)) if self.num_runs else 0.0

    @property
    def mean_rounds(self) -> float:
        """Mean convergence round over converged runs (NaN if none)."""
        vals = self.rounds[self.converged]
        return float(np.mean(vals)) if vals.size else float("nan")

    @property
    def median_rounds(self) -> float:
        vals = self.rounds[self.converged]
        return float(np.median(vals)) if vals.size else float("nan")

    @property
    def max_rounds(self) -> float:
        vals = self.rounds[self.converged]
        return float(np.max(vals)) if vals.size else float("nan")

    def quantile(self, q: float) -> float:
        """Convergence-round quantile over converged runs."""
        vals = self.rounds[self.converged]
        return float(np.quantile(vals, q)) if vals.size else float("nan")

    def summary(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "num_runs": self.num_runs,
            "convergence_fraction": self.convergence_fraction,
            "mean_rounds": self.mean_rounds,
            "median_rounds": self.median_rounds,
            "p90_rounds": self.quantile(0.90),
            "max_rounds": self.max_rounds,
            **self.meta,
        }


def run_batch(
    initial_factory: Callable[[np.random.Generator], Configuration] | Configuration,
    num_runs: int,
    *,
    rule: Rule | None = None,
    adversary_factory: Callable[[], Adversary] | None = None,
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    criterion: Optional[AlmostStableCriterion] = None,
    record: RecordLevel = RecordLevel.NONE,
    keep_results: bool = False,
    engine: str = "vectorized",
) -> BatchResult:
    """Run ``num_runs`` independent simulations and aggregate their outcomes.

    Parameters
    ----------
    initial_factory:
        Either a fixed :class:`Configuration` used for every run, or a
        callable ``rng -> Configuration`` drawing a fresh initial state per
        run (used for average-case experiments).
    adversary_factory:
        Zero-argument callable building a fresh adversary per run (adversaries
        carry per-run state such as victim sets); ``None`` means no adversary.
    keep_results:
        Keep the individual :class:`SimulationResult` objects (memory-heavy
        for large batches; off by default).
    engine:
        Which engine executes the batch: ``"vectorized"`` (O(n) per round per
        run) or ``"occupancy"`` (O(m²) per round, independent of n) loop the
        runs in Python; ``"occupancy-fused"`` routes the whole batch through
        :func:`run_batch_fused_occupancy` (one (R, m) count tensor, no
        per-run loop) whenever the rule/adversary pair supports it.  When it
        does not, the batch falls back to the looped occupancy path if only
        per-run records (``keep_results`` / ``record``) forced the loop, and
        to the vectorized path when the rule/adversary pair has no
        count-space form at all (a value-form initial is then required —
        occupancy states cannot be expanded implicitly).
        All are statistically equivalent.
    """
    if num_runs <= 0:
        raise ValueError("num_runs must be positive")
    if engine not in BATCH_ENGINES:
        raise KeyError(f"unknown engine {engine!r}; available: {sorted(BATCH_ENGINES)}")
    rule = rule or MedianRule()
    if engine == "occupancy-fused":
        probe = adversary_factory() if adversary_factory is not None else None
        if probe is not None:
            # hand the probe to run 0 so a stateful factory sees exactly one
            # call per run, whichever path executes the batch
            pending, original_factory = [probe], adversary_factory

            def adversary_factory() -> Adversary:
                return pending.pop() if pending else original_factory()

        if not _fused_occupancy_supported(rule, probe):
            # neither occupancy substrate can run this pair — only the
            # vectorized loop can
            engine = "vectorized"
        elif record is RecordLevel.NONE and not keep_results:
            return run_batch_fused_occupancy(
                initial_factory,
                num_runs,
                rule=rule,
                adversary_factory=adversary_factory,
                seed=seed,
                max_rounds=max_rounds,
                criterion=criterion,
            )
        else:
            engine = "occupancy"  # exact looped fallback, same workload form
    simulate_fn = ENGINES[engine]
    rngs = spawn_rngs(seed, num_runs)

    rounds = np.full(num_runs, np.nan)
    converged = np.zeros(num_runs, dtype=bool)
    results: List[SimulationResult] = []
    n_ref: Optional[int] = None

    for i, rng in enumerate(rngs):
        if isinstance(initial_factory, (Configuration, OccupancyState)):
            init = initial_factory
        else:
            init = initial_factory(rng)
        if isinstance(init, OccupancyState) and engine == "vectorized":
            raise ValueError(
                f"an OccupancyState initial requires an occupancy engine, "
                f"not {engine!r} (occupancy states cannot be expanded implicitly)"
            )
        n_ref = init.n if n_ref is None else n_ref
        adversary = adversary_factory() if adversary_factory is not None else NullAdversary()
        res = simulate_fn(
            init,
            rule=rule,
            adversary=adversary,
            seed=rng,
            max_rounds=max_rounds,
            criterion=criterion,
            record=record,
        )
        r = res.convergence_round()
        if r is not None:
            rounds[i] = r
            converged[i] = True
        if keep_results:
            results.append(res)

    return BatchResult(
        n=int(n_ref or 0),
        num_runs=num_runs,
        rounds=rounds,
        converged=converged,
        results=results,
        meta={"rule": rule.name, "engine": engine},
    )


# ---------------------------------------------------------------------- #
# fused multi-run engine for the median rule
# ---------------------------------------------------------------------- #
def _fused_median_round(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One median-rule round applied to all runs at once.

    ``values`` has shape ``(R, n)``; each run samples its own ``(n, 2)``
    contacts.  Gathers use ``take_along_axis`` so the whole round is a few
    vectorized passes over an ``(R, n)`` array.
    """
    R, n = values.shape
    samples = rng.integers(0, n, size=(R, n, 2))
    vj = np.take_along_axis(values, samples[:, :, 0], axis=1)
    vk = np.take_along_axis(values, samples[:, :, 1], axis=1)
    return median_of_three(values, vj, vk)


def _dense_batch_counts(values: np.ndarray) -> tuple:
    """Per-run value counts over the batch's joint support, without a run loop.

    Returns ``(uniq, counts)`` where ``uniq`` is the sorted union of values
    present anywhere in the ``(R, n)`` batch and ``counts`` is the ``(R, K)``
    matrix of per-run loads (zero where a run lacks the value).  One
    ``np.unique`` over the whole block plus one flat ``bincount`` replaces the
    former row-by-row ``np.unique`` passes.
    """
    R, n = values.shape
    uniq, inv = np.unique(values, return_inverse=True)
    K = uniq.shape[0]
    inv = inv.reshape(R, n)  # no-op on NumPy ≥ 2.0, flattens-back on 1.x
    flat = inv + (np.arange(R, dtype=np.intp)[:, None] * K)
    counts = np.bincount(flat.ravel(), minlength=R * K).reshape(R, K)
    return uniq, counts


def _fused_balancing_corruption(values: np.ndarray, budget: int,
                                rng: np.random.Generator) -> np.ndarray:
    """Apply a balancing adversary to every run of a fused batch.

    For each run the two most loaded values are found and up to ``budget``
    holders of the leader are rewritten to the runner-up; runs at exact
    consensus (fewer than two values present) are left untouched.  All runs
    are handled in one batched pass: per-run loads come from
    :func:`_dense_batch_counts` and the uniform-without-replacement victim
    choice is realized by ranking i.i.d. random keys over the leader's
    holders (the ``want`` smallest keys form exactly a uniform ``want``-subset),
    so no Python loop over runs remains.

    This helper works on the *current* values only and is therefore slightly
    weaker than :class:`BalancingAdversary` at exact consensus; the Figure-1
    benchmark uses two-value workloads where the difference does not matter
    (and cross-checks against the unfused engine).
    """
    R, n = values.shape
    out = values.copy()
    uniq, counts = _dense_batch_counts(out)
    if uniq.shape[0] < 2:
        return out

    run_rows = np.arange(R)
    lead_idx = counts.argmax(axis=1)          # smallest value among tied maxima
    lead_count = counts[run_rows, lead_idx]
    rest = counts.copy()
    rest[run_rows, lead_idx] = -1
    runner_idx = rest.argmax(axis=1)
    runner_count = rest[run_rows, runner_idx]

    gap = lead_count - runner_count
    want = np.minimum(budget, np.maximum((gap + 1) // 2, 0))
    want = np.where(runner_count > 0, want, 0)   # consensus rows: skip
    want = np.minimum(want, lead_count)
    kmax = int(want.max()) if want.size else 0
    if kmax <= 0:
        return out

    # rank i.i.d. keys over each run's leader holders; the want[r] smallest
    # keys are a uniform random want[r]-subset of the holders
    keys = rng.random((R, n))
    keys[out != uniq[lead_idx][:, None]] = np.inf
    cand = np.argpartition(keys, kmax - 1, axis=1)[:, :kmax]
    cand_keys = np.take_along_axis(keys, cand, axis=1)
    order = np.argsort(cand_keys, axis=1)
    cand = np.take_along_axis(cand, order, axis=1)

    sel = np.arange(kmax)[None, :] < want[:, None]
    rr, cc = np.nonzero(sel)
    out[rr, cand[rr, cc]] = uniq[runner_idx][rr]
    return out


def run_batch_fused(
    initial: Configuration,
    num_runs: int,
    *,
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    adversary_budget: int = 0,
    tolerance: Optional[int] = None,
    stability_window: int = 10,
) -> BatchResult:
    """Simulate ``num_runs`` median-rule runs from the same initial state, fused.

    All runs share the initial configuration but use independent randomness.
    Without an adversary a run's convergence round is its first
    exact-consensus round; with ``adversary_budget > 0`` a fused balancing
    adversary is applied each round and the convergence round is the first
    round of the trailing window in which at most ``tolerance`` processes
    disagree with the plurality (defaults to ``4 · budget``).

    Falls back to :func:`run_batch` semantics in accuracy but is typically an
    order of magnitude faster for medium ``n`` and many runs.
    """
    if num_runs <= 0:
        raise ValueError("num_runs must be positive")
    n = initial.n
    horizon = max_rounds if max_rounds is not None else default_max_rounds(n)
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    tol = (4 * adversary_budget) if tolerance is None else int(tolerance)

    values = np.tile(initial.copy_values(), (num_runs, 1))
    rounds = np.full(num_runs, np.nan)
    converged = np.zeros(num_runs, dtype=bool)
    # streak bookkeeping for the adversarial (almost-stable) case
    streak = np.zeros(num_runs, dtype=np.int64)
    streak_start = np.full(num_runs, -1, dtype=np.int64)

    def _minorities(vals: np.ndarray) -> np.ndarray:
        # number of processes outside the plurality value, per run — one
        # batched bincount pass instead of a per-run np.unique loop
        _, counts = _dense_batch_counts(vals)
        return (vals.shape[1] - counts.max(axis=1)).astype(np.int64)

    active = np.ones(num_runs, dtype=bool)
    for t in range(1, horizon + 1):
        if not np.any(active):
            break
        if adversary_budget > 0:
            values[active] = _fused_balancing_corruption(values[active], adversary_budget, rng)
        values[active] = _fused_median_round(values[active], rng)

        if adversary_budget == 0:
            # exact consensus check per active run
            act_idx = np.flatnonzero(active)
            same = np.all(values[act_idx] == values[act_idx, :1], axis=1)
            done = act_idx[same]
            rounds[done] = t
            converged[done] = True
            active[done] = False
        else:
            act_idx = np.flatnonzero(active)
            mins = _minorities(values[act_idx])
            ok = mins <= tol
            # update streaks
            started = ok & (streak[act_idx] == 0)
            streak_start[act_idx[started]] = t
            streak[act_idx[ok]] += 1
            streak[act_idx[~ok]] = 0
            streak_start[act_idx[~ok]] = -1
            finished = act_idx[streak[act_idx] >= stability_window]
            rounds[finished] = streak_start[finished]
            converged[finished] = True
            active[finished] = False

    return BatchResult(
        n=n,
        num_runs=num_runs,
        rounds=rounds,
        converged=converged,
        results=[],
        meta={
            "rule": "median",
            "fused": True,
            "adversary_budget": adversary_budget,
            "tolerance": tol,
            "horizon": horizon,
        },
    )


# ---------------------------------------------------------------------- #
# fused multi-run engine in occupancy (count) space
# ---------------------------------------------------------------------- #
#: Per-round working-set cap for the fused occupancy engine, in float64
#: elements of the (block, m, m) outcome tensor (2**24 ≈ 134 MB).  Rounds over
#: batches wider than this are processed in run blocks of that size.
FUSED_OCCUPANCY_BLOCK_ELEMS = 2 ** 24


def _fused_occupancy_supported(rule: Rule, adversary: Optional[Adversary]) -> bool:
    """Object-level twin of :func:`fused_occupancy_cell_supported`."""
    if adversary is not None and adversary.budget > 0 and not adversary.supports_counts:
        return False
    if callable(getattr(rule, "occupancy_kernel", None)):
        return True
    return isinstance(rule, OCCUPANCY_KERNEL_RULE_TYPES)


def _occupancy_round_blocked(counts: np.ndarray, rule: Rule,
                             rng: np.random.Generator,
                             max_block_elems: int,
                             support=None) -> np.ndarray:
    """One fused round, chunked over runs so peak memory stays bounded."""
    R, m = counts.shape
    block = max(1, int(max_block_elems) // max(m * m, 1))
    if R <= block:
        return occupancy_round_batch(counts, rule, rng, support=support)
    out = np.empty_like(counts)
    for start in range(0, R, block):
        out[start:start + block] = occupancy_round_batch(
            counts[start:start + block], rule, rng, support=support)
    return out


def _occupancy_round_blocked_split(counts: np.ndarray, victim_counts: np.ndarray,
                                   rule: Rule, rng: np.random.Generator,
                                   max_block_elems: int,
                                   support=None) -> tuple:
    """Blocked twin of :func:`~repro.engine.occupancy.occupancy_round_batch_split`.

    Used on rounds where at least one run's adversary tracks a victim
    occupancy; runs without one carry a zero victim row (a no-op scatter).
    """
    R, m = counts.shape
    block = max(1, int(max_block_elems) // max(m * m, 1))
    if R <= block:
        return occupancy_round_batch_split(counts, victim_counts, rule, rng,
                                           support=support)
    out = np.empty_like(counts)
    out_vic = np.empty_like(victim_counts)
    for start in range(0, R, block):
        out[start:start + block], out_vic[start:start + block] = \
            occupancy_round_batch_split(counts[start:start + block],
                                        victim_counts[start:start + block],
                                        rule, rng, support=support)
    return out, out_vic


def run_batch_fused_occupancy(
    initial_factory: Union[Configuration, OccupancyState,
                           Callable[[np.random.Generator], Configuration],
                           Callable[[np.random.Generator], OccupancyState]],
    num_runs: int,
    *,
    rule: Rule | None = None,
    adversary_factory: Callable[[], Adversary] | None = None,
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    criterion: Optional[AlmostStableCriterion] = None,
    max_block_elems: int = FUSED_OCCUPANCY_BLOCK_ELEMS,
) -> BatchResult:
    """Simulate ``num_runs`` independent runs as one count-tensor program.

    The multi-run analogue of :func:`repro.engine.occupancy.simulate_occupancy`
    (and the occupancy twin of :func:`run_batch_fused`): the batch state is an
    ``(R, m)`` int64 tensor of bin counts over a shared value support.  Each
    round builds the stacked per-run outcome tensor ``(R, m, m)`` with the
    batched CDF kernels, draws all ``R·m`` multinomial scatters in one
    reshaped call, and detects convergence in count space
    (``n − counts.max(axis=1)``, O(m) per run).  Per-round cost is O(R·m²)
    independent of n, with no Python loop over runs on the no-adversary path.

    Semantics match ``run_batch(engine="occupancy")`` run for run, in
    distribution: per-run initial draws use the same spawned seed streams,
    adversaries act through their exact count-edit form
    (:meth:`~repro.adversary.base.Adversary.corrupt_counts`, one fresh
    adversary per run with its own budget ledger), convergence is the exact
    consensus round without an adversary and the first round of the trailing
    ``criterion.window`` with minority ≤ ``criterion.tolerance`` with one
    (exact consensus, if a run ever latches it, takes precedence — exactly
    like :meth:`~repro.engine.run.SimulationResult.convergence_round`).

    Parameters
    ----------
    initial_factory:
        Fixed :class:`Configuration`/:class:`OccupancyState` used by every
        run, or a per-run factory ``rng -> Configuration | OccupancyState``.
        All runs must share the same population size n; the batch support is
        the union of the runs' initial values, while each run's adversary
        palette remains that run's *own* initial values (as in the looped
        engine — a sibling run's values are never admissible).
    adversary_factory:
        Zero-argument callable building a fresh count-capable adversary per
        run; ``None`` disables corruption.  The identity-tracking strategies
        (sticky, hiding) run through their exact victim-occupancy form: their
        runs' victim subpopulations are scattered as a separate multinomial
        program each round (still one fused pass over the batch).  Custom
        adversaries without a count-space form are rejected, matching the
        single-run engine.
    criterion:
        Almost-stable criterion; defaults to tolerance ``4·T`` with a
        10-round window (1-round window without an adversary), matching
        ``simulate_occupancy``.  Without an adversary runs still stop only at
        exact consensus, but a caller-supplied criterion is honored at the
        horizon: runs whose trailing streak satisfies it report the streak's
        first round, like the looped engine.
    max_block_elems:
        Cap on the per-round outcome-tensor working set (float64 elements);
        wide batches are processed in run blocks of at most this size.

    Returns
    -------
    BatchResult
        With ``results=[]`` (no per-run records — use :func:`run_batch` with
        ``keep_results=True`` when individual runs are needed).
    """
    if num_runs <= 0:
        raise ValueError("num_runs must be positive")
    rule = rule or MedianRule()

    # one child stream per run for the initial draw (aligning run_batch's
    # spawning discipline) plus one batch-wide stream for the dynamics
    streams = spawn_rngs(seed, num_runs + 1)
    rng = streams[-1]

    if isinstance(initial_factory, (Configuration, OccupancyState)):
        # fixed initial: convert/count once, share across the batch
        states: List[OccupancyState] = [_as_occupancy(initial_factory)] * num_runs
    else:
        states = [_as_occupancy(initial_factory(streams[i])) for i in range(num_runs)]

    n = states[0].n
    if any(s.n != n for s in states):
        raise ValueError("fused occupancy batch requires a uniform population size n")
    if n == 0:
        raise ValueError("cannot simulate an empty population")

    adversaries: List[Adversary] = [
        adversary_factory() if adversary_factory is not None else NullAdversary()
        for _ in range(num_runs)
    ]
    budgets = np.array([adv.budget for adv in adversaries], dtype=np.int64)
    any_adversary = bool(budgets.max() > 0)
    for adv in adversaries:
        adv.reset()
        if adv.budget > 0 and not adv.supports_counts:
            raise NotImplementedError(
                f"{type(adv).__name__} tracks process identities and cannot "
                "drive the occupancy engine; use the vectorized engine instead"
            )

    # per-run criterion, exactly as run_batch's looped engines derive it: a
    # caller-supplied criterion applies to every run, the default depends on
    # each run's own adversary budget (so mixed-budget factories keep the
    # looped semantics run for run)
    if criterion is None:
        tol = np.where(budgets > 0, 4 * budgets, 0)
        window = np.where(budgets > 0, 10, 1)
    else:
        tol = np.full(num_runs, int(criterion.tolerance), dtype=np.int64)
        window = np.full(num_runs, int(criterion.window), dtype=np.int64)

    horizon = max_rounds if max_rounds is not None else default_max_rounds(n)
    if horizon < 0:
        raise ValueError("max_rounds must be non-negative")

    # shared fixed support: union of every run's initial values.  Each run's
    # adversary palette stays that run's *own* initial values (count edits may
    # revive extinct values, but never values from a sibling run), matching
    # the looped engine.
    if states[0] is states[-1]:  # fixed initial: one alignment, tiled
        shared_palette = states[0].support[states[0].counts > 0]
        admissibles = [shared_palette] * num_runs
        support = shared_palette.copy()
        counts = np.tile(states[0].with_support(support).counts, (num_runs, 1))
    else:
        admissibles = [s.support[s.counts > 0] for s in states]
        support = reduce(np.union1d, admissibles)
        counts = np.stack([s.with_support(support).counts for s in states])
    num_bins = int(support.shape[0])

    rounds = np.full(num_runs, np.nan)
    converged = np.zeros(num_runs, dtype=bool)
    consensus_round = np.full(num_runs, -1, dtype=np.int64)
    streak = np.zeros(num_runs, dtype=np.int64)
    streak_start = np.full(num_runs, -1, dtype=np.int64)
    active = np.ones(num_runs, dtype=bool)

    minority0 = n - counts.max(axis=1)
    at_consensus0 = np.count_nonzero(counts, axis=1) <= 1
    consensus_round[at_consensus0] = 0
    ok0 = minority0 <= tol
    streak[ok0] = 1
    streak_start[ok0] = 0
    init_done = at_consensus0 & (budgets == 0)
    rounds[init_done] = 0
    converged[init_done] = True
    active[init_done] = False

    rounds_executed = 0
    for t in range(1, horizon + 1):
        act = np.flatnonzero(active)
        if act.size == 0:
            break
        rounds_executed = t
        sub = counts[act]

        if any_adversary:
            for j, r_idx in enumerate(act):
                adv = adversaries[r_idx]
                if adv.budget > 0 and adv.timing is AdversaryTiming.BEFORE_SAMPLING:
                    sub[j] = adv.corrupt_counts(support, sub[j], t,
                                                admissibles[r_idx], rng)

        tracked = []
        if any_adversary:
            # runs whose adversary tracks a victim occupancy (sticky, hiding)
            # get their victims scattered as a separate — exactly equivalent —
            # multinomial program, and learn the victims' new occupancy
            victims = None
            for j, r_idx in enumerate(act):
                adv = adversaries[r_idx]
                if adv.budget > 0:
                    vc = adv.victim_counts(support)
                    if vc is not None:
                        if victims is None:
                            victims = np.zeros_like(sub)
                        victims[j] = vc
                        tracked.append((j, r_idx))
        if tracked:
            sub, new_victims = _occupancy_round_blocked_split(
                sub, victims, rule, rng, max_block_elems, support=support)
            for j, r_idx in tracked:
                adversaries[r_idx].observe_victim_scatter(support, new_victims[j])
        else:
            sub = _occupancy_round_blocked(sub, rule, rng, max_block_elems,
                                           support=support)

        if any_adversary:
            for j, r_idx in enumerate(act):
                adv = adversaries[r_idx]
                if adv.budget > 0 and adv.timing is AdversaryTiming.AFTER_SAMPLING:
                    sub[j] = adv.corrupt_counts(support, sub[j], t,
                                                admissibles[r_idx], rng)

        counts[act] = sub
        minority = n - sub.max(axis=1)
        at_consensus = np.count_nonzero(sub, axis=1) <= 1
        newly = act[at_consensus & (consensus_round[act] < 0)]
        consensus_round[newly] = t

        ok = minority <= tol[act]
        started = ok & (streak[act] == 0)
        streak_start[act[started]] = t
        streak[act[ok]] += 1
        streak[act[~ok]] = 0
        streak_start[act[~ok]] = -1
        no_adv = budgets[act] == 0
        # adversary-free runs stop only at exact consensus (streaks are still
        # tracked so a caller-supplied almost-stable criterion is honored at
        # the horizon, like the looped engine); adversarial runs stop once
        # their trailing window satisfies their tolerance
        done = act[no_adv & (minority == 0)]
        rounds[done] = t
        converged[done] = True
        active[done] = False
        fin = act[~no_adv & (streak[act] >= window[act])]
        rounds[fin] = np.where(consensus_round[fin] >= 0,
                               consensus_round[fin], streak_start[fin])
        converged[fin] = True
        active[fin] = False

        # compact bins that are empty in every run: the rules only ever output
        # present values, so without an adversary such bins can never refill
        # (with one, the admissible palettes must stay addressable)
        if not any_adversary and active.any():
            occupied = counts.any(axis=0)
            if not occupied.all():
                support = support[occupied]
                counts = np.ascontiguousarray(counts[:, occupied])

    # horizon exhausted: runs that latched exact consensus still report it,
    # and runs whose trailing streak satisfies the criterion report its first
    # round — mirroring SimulationResult.convergence_round()
    leftovers = np.flatnonzero(active)
    latched = leftovers[consensus_round[leftovers] >= 0]
    rounds[latched] = consensus_round[latched]
    converged[latched] = True
    stable = leftovers[(consensus_round[leftovers] < 0)
                       & (streak[leftovers] >= window[leftovers])]
    rounds[stable] = streak_start[stable]
    converged[stable] = True

    return BatchResult(
        n=n,
        num_runs=num_runs,
        rounds=rounds,
        converged=converged,
        results=[],
        meta={
            "rule": rule.name,
            "engine": "occupancy-fused",
            "fused": True,
            "adversary_budget": int(budgets.max()),
            "tolerance": int(tol.max()),
            "window": int(window.max()),
            "horizon": horizon,
            "num_bins": num_bins,
            "rounds_executed": rounds_executed,
            "budget_ledger_ok": all(adv.ledger.verify() for adv in adversaries),
        },
    )
