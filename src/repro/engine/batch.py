"""Batched Monte-Carlo simulation.

Experiments need distributions of convergence times, not single runs.  Two
batching strategies are provided:

* :func:`run_batch` — repeat :func:`repro.engine.vectorized.simulate` over
  independent seeds.  Flexible (any rule, any adversary, full result records)
  but pays the per-run Python overhead.

* :func:`run_batch_fused` — simulate ``R`` independent *median-rule* runs in
  one array program of shape ``(R, n)``: each round draws an ``(R, n, 2)``
  sample tensor and applies the median kernel to all runs simultaneously.
  This amortizes the per-round Python overhead across runs and is the engine
  behind the large sweeps in the Figure-1 benchmark.  It supports the
  balancing adversary and the null adversary (the two needed for the paper's
  tables); other adversaries automatically fall back to :func:`run_batch`.

Both return a :class:`BatchResult` with convergence-round statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.adversary.base import Adversary, NullAdversary
from repro.adversary.strategies import BalancingAdversary
from repro.core.consensus import AlmostStableCriterion
from repro.core.median_rule import MedianRule, median_of_three
from repro.core.occupancy_state import OccupancyState
from repro.core.rules import Rule
from repro.core.state import Configuration
from repro.engine.occupancy import simulate_occupancy
from repro.engine.rng import spawn_rngs
from repro.engine.run import SimulationResult
from repro.engine.trajectory import RecordLevel
from repro.engine.vectorized import default_max_rounds, simulate

__all__ = ["BatchResult", "run_batch", "run_batch_fused", "ENGINES"]

#: Single-run engines selectable by name (``run_batch(engine=...)``,
#: ``ExperimentConfig.engine``, ``repro-consensus simulate --engine``).
ENGINES = {
    "vectorized": simulate,
    "occupancy": simulate_occupancy,
}


@dataclass
class BatchResult:
    """Aggregate of a batch of independent runs.

    ``rounds`` holds one entry per run: the convergence round (exact consensus
    round without an adversary, almost-stable round with one), or ``NaN`` if
    the run did not converge within its horizon.
    """

    n: int
    num_runs: int
    rounds: np.ndarray
    converged: np.ndarray
    results: List[SimulationResult] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def convergence_fraction(self) -> float:
        """Fraction of runs that converged within the horizon."""
        return float(np.mean(self.converged)) if self.num_runs else 0.0

    @property
    def mean_rounds(self) -> float:
        """Mean convergence round over converged runs (NaN if none)."""
        vals = self.rounds[self.converged]
        return float(np.mean(vals)) if vals.size else float("nan")

    @property
    def median_rounds(self) -> float:
        vals = self.rounds[self.converged]
        return float(np.median(vals)) if vals.size else float("nan")

    @property
    def max_rounds(self) -> float:
        vals = self.rounds[self.converged]
        return float(np.max(vals)) if vals.size else float("nan")

    def quantile(self, q: float) -> float:
        """Convergence-round quantile over converged runs."""
        vals = self.rounds[self.converged]
        return float(np.quantile(vals, q)) if vals.size else float("nan")

    def summary(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "num_runs": self.num_runs,
            "convergence_fraction": self.convergence_fraction,
            "mean_rounds": self.mean_rounds,
            "median_rounds": self.median_rounds,
            "p90_rounds": self.quantile(0.90),
            "max_rounds": self.max_rounds,
            **self.meta,
        }


def run_batch(
    initial_factory: Callable[[np.random.Generator], Configuration] | Configuration,
    num_runs: int,
    *,
    rule: Rule | None = None,
    adversary_factory: Callable[[], Adversary] | None = None,
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    criterion: Optional[AlmostStableCriterion] = None,
    record: RecordLevel = RecordLevel.NONE,
    keep_results: bool = False,
    engine: str = "vectorized",
) -> BatchResult:
    """Run ``num_runs`` independent simulations and aggregate their outcomes.

    Parameters
    ----------
    initial_factory:
        Either a fixed :class:`Configuration` used for every run, or a
        callable ``rng -> Configuration`` drawing a fresh initial state per
        run (used for average-case experiments).
    adversary_factory:
        Zero-argument callable building a fresh adversary per run (adversaries
        carry per-run state such as victim sets); ``None`` means no adversary.
    keep_results:
        Keep the individual :class:`SimulationResult` objects (memory-heavy
        for large batches; off by default).
    engine:
        Which single-run engine executes each run: ``"vectorized"`` (O(n) per
        round) or ``"occupancy"`` (O(m²) per round, independent of n) — see
        :data:`ENGINES`.  The two are statistically equivalent.
    """
    if num_runs <= 0:
        raise ValueError("num_runs must be positive")
    if engine not in ENGINES:
        raise KeyError(f"unknown engine {engine!r}; available: {sorted(ENGINES)}")
    simulate_fn = ENGINES[engine]
    rule = rule or MedianRule()
    rngs = spawn_rngs(seed, num_runs)

    rounds = np.full(num_runs, np.nan)
    converged = np.zeros(num_runs, dtype=bool)
    results: List[SimulationResult] = []
    n_ref: Optional[int] = None

    for i, rng in enumerate(rngs):
        if isinstance(initial_factory, (Configuration, OccupancyState)):
            init = initial_factory
        else:
            init = initial_factory(rng)
        if isinstance(init, OccupancyState) and engine != "occupancy":
            raise ValueError(
                f"an OccupancyState initial requires engine='occupancy', "
                f"not {engine!r} (occupancy states cannot be expanded implicitly)"
            )
        n_ref = init.n if n_ref is None else n_ref
        adversary = adversary_factory() if adversary_factory is not None else NullAdversary()
        res = simulate_fn(
            init,
            rule=rule,
            adversary=adversary,
            seed=rng,
            max_rounds=max_rounds,
            criterion=criterion,
            record=record,
        )
        r = res.convergence_round()
        if r is not None:
            rounds[i] = r
            converged[i] = True
        if keep_results:
            results.append(res)

    return BatchResult(
        n=int(n_ref or 0),
        num_runs=num_runs,
        rounds=rounds,
        converged=converged,
        results=results,
        meta={"rule": rule.name, "engine": engine},
    )


# ---------------------------------------------------------------------- #
# fused multi-run engine for the median rule
# ---------------------------------------------------------------------- #
def _fused_median_round(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """One median-rule round applied to all runs at once.

    ``values`` has shape ``(R, n)``; each run samples its own ``(n, 2)``
    contacts.  Gathers use ``take_along_axis`` so the whole round is a few
    vectorized passes over an ``(R, n)`` array.
    """
    R, n = values.shape
    samples = rng.integers(0, n, size=(R, n, 2))
    vj = np.take_along_axis(values, samples[:, :, 0], axis=1)
    vk = np.take_along_axis(values, samples[:, :, 1], axis=1)
    return median_of_three(values, vj, vk)


def _fused_balancing_corruption(values: np.ndarray, budget: int,
                                rng: np.random.Generator) -> np.ndarray:
    """Apply a balancing adversary to every run of a fused batch.

    For each run the two most loaded values are found and up to ``budget``
    holders of the leader are rewritten to the runner-up (or, at consensus,
    to any other admissible value present initially — the fused engine only
    supports two-value workloads for the adversarial case, so the runner-up
    always exists among {min, max} of the run's initial support, which the
    caller passes in through the closure of the per-run value pool).

    This helper works on the *current* values only and is therefore slightly
    weaker than :class:`BalancingAdversary` at exact consensus; the Figure-1
    benchmark uses two-value workloads where the difference does not matter
    (and cross-checks against the unfused engine).
    """
    R, n = values.shape
    out = values.copy()
    for r in range(R):  # R is small (tens of runs); n is the large dimension
        row = out[r]
        uniq, counts = np.unique(row, return_counts=True)
        if uniq.shape[0] < 2:
            continue
        order = np.argsort(-counts, kind="stable")
        leader = uniq[order[0]]
        runner = uniq[order[1]]
        gap = int(counts[order[0]] - counts[order[1]])
        want = min(budget, max((gap + 1) // 2, 0))
        if want <= 0:
            continue
        holders = np.flatnonzero(row == leader)
        victims = rng.choice(holders, size=min(want, holders.shape[0]), replace=False)
        row[victims] = runner
    return out


def run_batch_fused(
    initial: Configuration,
    num_runs: int,
    *,
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    adversary_budget: int = 0,
    tolerance: Optional[int] = None,
    stability_window: int = 10,
) -> BatchResult:
    """Simulate ``num_runs`` median-rule runs from the same initial state, fused.

    All runs share the initial configuration but use independent randomness.
    Without an adversary a run's convergence round is its first
    exact-consensus round; with ``adversary_budget > 0`` a fused balancing
    adversary is applied each round and the convergence round is the first
    round of the trailing window in which at most ``tolerance`` processes
    disagree with the plurality (defaults to ``4 · budget``).

    Falls back to :func:`run_batch` semantics in accuracy but is typically an
    order of magnitude faster for medium ``n`` and many runs.
    """
    if num_runs <= 0:
        raise ValueError("num_runs must be positive")
    n = initial.n
    horizon = max_rounds if max_rounds is not None else default_max_rounds(n)
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    tol = (4 * adversary_budget) if tolerance is None else int(tolerance)

    values = np.tile(initial.copy_values(), (num_runs, 1))
    rounds = np.full(num_runs, np.nan)
    converged = np.zeros(num_runs, dtype=bool)
    # streak bookkeeping for the adversarial (almost-stable) case
    streak = np.zeros(num_runs, dtype=np.int64)
    streak_start = np.full(num_runs, -1, dtype=np.int64)

    def _minorities(vals: np.ndarray) -> np.ndarray:
        # number of processes outside the plurality value, per run
        out = np.empty(vals.shape[0], dtype=np.int64)
        for r in range(vals.shape[0]):
            _, counts = np.unique(vals[r], return_counts=True)
            out[r] = vals.shape[1] - counts.max()
        return out

    active = np.ones(num_runs, dtype=bool)
    for t in range(1, horizon + 1):
        if not np.any(active):
            break
        if adversary_budget > 0:
            values[active] = _fused_balancing_corruption(values[active], adversary_budget, rng)
        values[active] = _fused_median_round(values[active], rng)

        if adversary_budget == 0:
            # exact consensus check per active run
            act_idx = np.flatnonzero(active)
            same = np.all(values[act_idx] == values[act_idx, :1], axis=1)
            done = act_idx[same]
            rounds[done] = t
            converged[done] = True
            active[done] = False
        else:
            act_idx = np.flatnonzero(active)
            mins = _minorities(values[act_idx])
            ok = mins <= tol
            # update streaks
            started = ok & (streak[act_idx] == 0)
            streak_start[act_idx[started]] = t
            streak[act_idx[ok]] += 1
            streak[act_idx[~ok]] = 0
            streak_start[act_idx[~ok]] = -1
            finished = act_idx[streak[act_idx] >= stability_window]
            rounds[finished] = streak_start[finished]
            converged[finished] = True
            active[finished] = False

    return BatchResult(
        n=n,
        num_runs=num_runs,
        rounds=rounds,
        converged=converged,
        results=[],
        meta={
            "rule": "median",
            "fused": True,
            "adversary_budget": adversary_budget,
            "tolerance": tol,
            "horizon": horizon,
        },
    )
