"""Asynchronous (sequential-activation) execution model.

The paper assumes fully synchronous rounds.  A standard robustness question —
part of the "robustness of the protocol deserves further studies" the
conclusion calls for — is whether the median rule survives *asynchronous*
scheduling, where processes are activated one at a time (uniformly at random,
or by an adversarial scheduler) and immediately apply their update against
the *current* values of two sampled processes.

This module provides that execution model:

* :func:`simulate_asynchronous` — runs the median (or any registered) rule
  under sequential activation.  Time is counted in *sweeps*: one sweep is
  ``n`` activations, the natural unit comparable to one synchronous round.
* activation orders: ``"uniform"`` (each activation picks a uniformly random
  process — the standard asynchronous model), ``"shuffle"`` (random
  permutation per sweep, every process activated exactly once per sweep) and
  ``"adversarial-lifo"`` (always activate the process that deviates most from
  the current plurality — a scheduler trying to slow convergence down).

The asynchronous-vs-synchronous comparison is exercised by tests and the
robustness ablation benchmark; empirically the median rule converges in
O(log n) sweeps under all three schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.consensus import ConsensusStatus, is_consensus
from repro.core.median_rule import MedianRule
from repro.core.rules import Rule
from repro.core.state import Configuration
from repro.engine.rng import make_rng

__all__ = ["AsyncResult", "simulate_asynchronous", "ACTIVATION_ORDERS"]

ACTIVATION_ORDERS = ("uniform", "shuffle", "adversarial-lifo")


@dataclass
class AsyncResult:
    """Outcome of an asynchronous run (time measured in sweeps of n activations)."""

    initial: Configuration
    final: Configuration
    sweeps_executed: int
    activations_executed: int
    consensus: ConsensusStatus

    @property
    def reached_consensus(self) -> bool:
        return self.consensus.reached

    @property
    def consensus_sweep(self) -> Optional[int]:
        return self.consensus.round


def _activation_sequence(order: str, n: int, values: np.ndarray,
                         rng: np.random.Generator) -> np.ndarray:
    """Indices of the processes activated during one sweep."""
    if order == "uniform":
        return rng.integers(0, n, size=n)
    if order == "shuffle":
        return rng.permutation(n)
    if order == "adversarial-lifo":
        # activate minority-value holders last so their values linger longest:
        # plurality holders first, then the rest (a scheduler trying to keep
        # stragglers alive as long as possible).
        uniq, counts = np.unique(values, return_counts=True)
        plurality = uniq[int(np.argmax(counts))]
        majority_idx = np.flatnonzero(values == plurality)
        minority_idx = np.flatnonzero(values != plurality)
        rng.shuffle(majority_idx)
        rng.shuffle(minority_idx)
        return np.concatenate([majority_idx, minority_idx])
    raise ValueError(f"unknown activation order {order!r}; choose from {ACTIVATION_ORDERS}")


def simulate_asynchronous(
    initial: Configuration | np.ndarray,
    rule: Rule | None = None,
    *,
    order: str = "uniform",
    seed: Optional[int | np.random.Generator] = None,
    max_sweeps: Optional[int] = None,
) -> AsyncResult:
    """Run a rule under sequential (asynchronous) activation.

    Parameters
    ----------
    initial:
        Initial configuration.
    rule:
        Update rule (default: median rule).  Each activation applies
        ``rule.apply_single`` against the current values of freshly sampled
        contacts.
    order:
        Activation schedule per sweep (see :data:`ACTIVATION_ORDERS`).
    max_sweeps:
        Horizon in sweeps; default ``max(200, 40·log2 n)``.
    """
    cfg = initial if isinstance(initial, Configuration) else Configuration.from_values(initial)
    rule = rule or MedianRule()
    rng = make_rng(seed)
    n = cfg.n
    horizon = max_sweeps if max_sweeps is not None else max(200, int(40 * np.log2(max(n, 2))))

    values = cfg.copy_values()
    consensus = ConsensusStatus(reached=False, round=None, value=None)
    if is_consensus(values):
        consensus = ConsensusStatus(reached=True, round=0, value=int(values[0]))

    sweeps = 0
    activations = 0
    for sweep in range(1, horizon + 1):
        schedule = _activation_sequence(order, n, values, rng)
        for i in schedule:
            contacts = rng.integers(0, n, size=rule.num_choices)
            sampled = [int(values[c]) for c in contacts]
            values[i] = rule.apply_single(int(values[i]), sampled, rng)
            activations += 1
        sweeps = sweep
        if not consensus.reached and is_consensus(values):
            consensus = ConsensusStatus(reached=True, round=sweep, value=int(values[0]))
            break

    return AsyncResult(
        initial=cfg,
        final=Configuration.from_values(values),
        sweeps_executed=sweeps,
        activations_executed=activations,
        consensus=consensus,
    )
