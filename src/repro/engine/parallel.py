"""Process-pool execution of independent simulation batches.

Parameter sweeps (Figure 1, Theorems 3/4) launch many independent batches:
one per (n, m, adversary budget) cell.  Because each batch is an independent
Monte-Carlo computation, the natural parallelization is one cell per worker
process — the "embarrassingly parallel" pattern the HPC guides recommend for
Python (process-level parallelism; no shared mutable state; NumPy inside each
worker).

Work items must be *picklable*: the pool ships a :class:`WorkItem` describing
the cell (not closures), and the worker rebuilds rules/adversaries from their
registry names.  ``max_workers=0`` (or an unavailable ``ProcessPoolExecutor``)
falls back to in-process serial execution, which keeps tests deterministic
and CI-friendly.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.adversary.strategies import make_adversary
from repro.core.rules import get_rule
from repro.core.state import Configuration
from repro.engine.batch import BatchResult, run_batch
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.robustness import DegradedExecutionWarning
from repro.robustness.faults import fault_point, mark_worker_process

__all__ = ["WorkItem", "execute_work_items", "format_cell_error",
           "iter_work_item_results", "recommended_workers"]


@dataclass(frozen=True)
class WorkItem:
    """A picklable description of one Monte-Carlo cell.

    Attributes
    ----------
    label:
        Free-form identifier echoed back with the result (e.g. ``"n=4096"``).
    workload:
        Name of a workload generator registered in
        :mod:`repro.experiments.workloads`.
    workload_params:
        Keyword arguments for the workload generator (must include ``n``).
    rule / rule_params:
        Rule registry name and constructor kwargs.
    adversary / adversary_budget / adversary_params:
        Adversary registry name, budget T, constructor kwargs.
    num_runs, seed, max_rounds:
        Batch size, base seed, and per-run horizon.
    engine:
        Batch engine name (``"vectorized"``, ``"occupancy"``, or
        ``"occupancy-fused"`` — see :data:`repro.engine.batch.BATCH_ENGINES`).
    """

    label: str
    workload: str
    workload_params: Dict[str, Any]
    rule: str = "median"
    rule_params: Dict[str, Any] = field(default_factory=dict)
    adversary: str = "null"
    adversary_budget: int = 0
    adversary_params: Dict[str, Any] = field(default_factory=dict)
    num_runs: int = 20
    seed: Optional[int] = None
    max_rounds: Optional[int] = None
    engine: str = "vectorized"

    def __hash__(self) -> int:  # dataclass with dict fields: hash by label+seed
        return hash((self.label, self.workload, self.rule, self.adversary,
                     self.adversary_budget, self.num_runs, self.seed, self.engine))


def format_cell_error(exc: BaseException) -> str:
    """The canonical per-cell failure string: exception type + message.

    Deliberately excludes the traceback, which differs between in-process and
    pooled execution — the same poisoned cell must produce the same string on
    every backend so failure-carrying reports stay backend-equal.
    """
    return f"{type(exc).__name__}: {exc}"


def _execute_one(item: WorkItem) -> Dict[str, Any]:
    """Worker entry point: run one cell and return a flat summary dict."""
    # the pooled equivalent of run_cell's seam: "worker.compute" must cover
    # every backend's per-cell compute entry, and pool workers enter here
    fault_point("worker.compute", cell=item.label)
    # imported here so the worker process resolves registries on its side
    from repro.experiments.runner import emit_engine_metrics, resolve_cell_engine
    from repro.experiments.workloads import make_workload_for_engine

    if obs_trace.enabled():
        from repro.engine._multinomial import DRAW_STATS

        draws_before = dict(DRAW_STATS)
    else:
        draws_before = None
    rule = get_rule(item.rule, **item.rule_params)
    engine = resolve_cell_engine(item.rule, item.adversary, item.engine,
                                 item.workload, item.workload_params)
    workload = make_workload_for_engine(item.workload, engine,
                                        **item.workload_params)

    def adversary_factory():
        return make_adversary(item.adversary, budget=item.adversary_budget,
                              **item.adversary_params)

    # the span is keyed by the cell label (pool workers never see the store
    # key); the coordinating process tags its consuming span with the hash
    with obs_trace.span("cell.compute", key=item.label, cell_label=item.label,
                        backend="pool", engine=engine):
        batch = run_batch(
            workload,
            num_runs=item.num_runs,
            rule=rule,
            adversary_factory=adversary_factory if item.adversary_budget > 0 else None,
            seed=item.seed,
            max_rounds=item.max_rounds,
            engine=engine,
        )
    emit_engine_metrics(batch, draws_before)
    summary = batch.summary()
    summary["label"] = item.label
    summary["engine"] = engine   # resolved engine, for result provenance
    summary["rule"] = item.rule
    summary["workload"] = item.workload
    summary["adversary"] = item.adversary
    summary["adversary_budget"] = item.adversary_budget
    # per-run rounds travel back too, so pooled cells summarize identically
    # to serial run_cell() ones (and the store caches the same record shape
    # regardless of which backend computed it)
    summary["rounds"] = [float(r) for r in batch.rounds]
    summary.update({f"param_{k}": v for k, v in item.workload_params.items()})
    return summary


def _execute_one_captured(item: WorkItem) -> Dict[str, Any]:
    """Like :func:`_execute_one`, but a raising cell returns an error summary.

    Capturing inside the worker keeps one poisoned cell from aborting the
    whole pool (``pool.map`` re-raises the first worker exception at the
    barrier, silently discarding every other result).  Pool-infrastructure
    failures (``BrokenProcessPool`` etc.) are *not* captured here — they
    surface at the submission site, where the sandbox fallback handles them.
    """
    try:
        return _execute_one(item)
    except Exception as exc:   # noqa: BLE001 — per-cell isolation is the point
        return {"label": item.label, "error": format_cell_error(exc)}


def recommended_workers() -> int:
    """A conservative worker count: ``cpu_count - 1`` with a floor of 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def execute_work_items(
    items: Sequence[WorkItem],
    max_workers: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Run a list of work items, in parallel when possible.

    Parameters
    ----------
    items:
        The cells to run.
    max_workers:
        ``None`` → :func:`recommended_workers`; ``0`` or ``1`` → serial
        in-process execution (no pool).

    Returns
    -------
    list of dict
        One flat summary per item, in the same order as ``items``.  A cell
        that raised carries ``{"label", "error"}`` instead of metrics, so a
        single poisoned cell never silently swallows the rest of the sweep.
    """
    items = list(items)
    if not items:
        return []
    workers = recommended_workers() if max_workers is None else int(max_workers)
    if workers <= 1 or len(items) == 1:
        return [_execute_one_captured(item) for item in items]

    try:
        fault_point("subprocess.spawn", backend="pool")
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=mark_worker_process) as pool:
            return list(pool.map(_execute_one_captured, items))
    except (OSError, ValueError, RuntimeError) as exc:
        # Sandboxed or fork-restricted environments: degrade gracefully.
        message = (f"process pool unavailable ({type(exc).__name__}: {exc}); "
                   f"degrading to serial in-process execution")
        warnings.warn(message, DegradedExecutionWarning, stacklevel=2)
        obs_trace.warning_event("DegradedExecutionWarning", message,
                                rung="pool-to-serial")
        obs_metrics.count("degraded", rung="pool-to-serial")
        return [_execute_one_captured(item) for item in items]


def iter_work_item_results(
    items: Sequence[WorkItem],
    max_workers: Optional[int] = None,
) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(index, summary)`` pairs as work items *complete*.

    Unlike :func:`execute_work_items` (a barrier that returns everything in
    submission order), results are yielded in completion order, so callers
    can persist each cell the moment it finishes — the property
    :class:`repro.store.CachedSweepRunner` needs for interrupt-resume on the
    pooled path.  Worker/fallback conventions match
    :func:`execute_work_items` (including per-cell ``{"label", "error"}``
    summaries for raising cells); items whose result was already yielded are
    never re-executed by the serial fallback.
    """
    items = list(items)
    if not items:
        return
    workers = recommended_workers() if max_workers is None else int(max_workers)
    done: set = set()
    if workers > 1 and len(items) > 1:
        try:
            fault_point("subprocess.spawn", backend="pool")
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=mark_worker_process) as pool:
                futures = {pool.submit(_execute_one_captured, item): i
                           for i, item in enumerate(items)}
                for future in as_completed(futures):
                    index = futures[future]
                    # result first: a future poisoned by a dead worker raises
                    # here, and its index must stay NOT-done so the serial
                    # fallback still computes it
                    result = future.result()
                    done.add(index)
                    yield index, result
            return
        except (OSError, ValueError, RuntimeError) as exc:
            # degradation ladder: a pool that cannot start (sandbox) or that
            # broke mid-sweep (a SIGKILLed worker → BrokenProcessPool, a
            # RuntimeError subclass) falls back to serial execution of
            # whatever was not already yielded — no cell is lost or re-run
            message = (f"process pool unavailable "
                       f"({type(exc).__name__}: {exc}); "
                       f"completing the sweep serially in-process")
            warnings.warn(message, DegradedExecutionWarning, stacklevel=2)
            obs_trace.warning_event("DegradedExecutionWarning", message,
                                    rung="pool-to-serial")
            obs_metrics.count("degraded", rung="pool-to-serial")
    for i, item in enumerate(items):
        if i not in done:
            yield i, _execute_one_captured(item)
