"""Result records for simulation runs.

:class:`SimulationResult` is the uniform return type of both the vectorized
engine (:mod:`repro.engine.vectorized`) and the agent-level network simulator
(:mod:`repro.network.simulator`), so analysis and experiment code never cares
which substrate produced a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.consensus import AlmostStableCriterion, ConsensusStatus
from repro.core.state import Configuration
from repro.engine.trajectory import Trajectory

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulated run.

    Attributes
    ----------
    initial / final:
        First and last configurations of the run.
    rounds_executed:
        Number of synchronous rounds actually simulated (the run may stop
        early once its stop criterion fires).
    consensus:
        Exact-consensus detection outcome (first round all values equal);
        for adversarial runs this usually reports "not reached" because the
        adversary keeps a handful of processes deviating.
    almost_stable:
        Almost-stable-consensus detection outcome under the run's criterion
        (tolerance ``O(T)``, trailing stability window).
    trajectory:
        Per-round records (level depends on the run's ``RecordLevel``).
    rule_name / adversary_name:
        Provenance for reporting.
    meta:
        Free-form extras (e.g. adversary budget, workload name, seed).
    """

    initial: Configuration
    final: Configuration
    rounds_executed: int
    consensus: ConsensusStatus
    almost_stable: ConsensusStatus
    trajectory: Trajectory
    rule_name: str = "median"
    adversary_name: str = "null"
    criterion: Optional[AlmostStableCriterion] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # convenience accessors used throughout experiments and tests
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self.initial.n

    @property
    def reached_consensus(self) -> bool:
        return self.consensus.reached

    @property
    def consensus_round(self) -> Optional[int]:
        return self.consensus.round

    @property
    def reached_almost_stable(self) -> bool:
        return self.almost_stable.reached

    @property
    def almost_stable_round(self) -> Optional[int]:
        return self.almost_stable.round

    @property
    def winning_value(self) -> Optional[int]:
        if self.consensus.value is not None:
            return self.consensus.value
        return self.almost_stable.value

    @property
    def final_agreement_fraction(self) -> float:
        return self.final.agreement_fraction()

    def convergence_round(self) -> Optional[int]:
        """The round count experiments report: exact consensus if reached,
        otherwise the almost-stable round (or ``None`` if neither)."""
        if self.consensus.reached:
            return self.consensus.round
        if self.almost_stable.reached:
            return self.almost_stable.round
        return None

    def summary(self) -> Dict[str, Any]:
        """A flat, JSON-serializable summary of the run."""
        return {
            "n": self.n,
            "rule": self.rule_name,
            "adversary": self.adversary_name,
            "rounds_executed": self.rounds_executed,
            "initial_support": self.initial.num_values,
            "final_support": self.final.num_values,
            "consensus_reached": self.consensus.reached,
            "consensus_round": self.consensus.round,
            "almost_stable_reached": self.almost_stable.reached,
            "almost_stable_round": self.almost_stable.round,
            "winning_value": self.winning_value,
            "final_agreement_fraction": self.final_agreement_fraction,
            **{f"meta_{k}": v for k, v in self.meta.items()},
        }
