"""Trajectory recording for simulation runs.

A :class:`Trajectory` stores per-round snapshots and/or derived series of one
run.  Recording every full configuration is memory-heavy for large ``n``, so
the recorder supports three levels:

* ``RecordLevel.NONE``    — nothing but the final configuration;
* ``RecordLevel.METRICS`` — per-round scalar metrics (agreement, support
  size, minority count, median value) — the default, O(rounds) memory;
* ``RecordLevel.FULL``    — every configuration snapshot, O(rounds · n)
  memory; used by coupling tests and small-n visualisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.metrics import ConfigurationMetrics, configuration_metrics
from repro.core.state import Configuration

__all__ = ["RecordLevel", "Trajectory", "TrajectoryRecorder"]


class RecordLevel(enum.Enum):
    """How much of a run to record."""

    NONE = "none"
    METRICS = "metrics"
    FULL = "full"


@dataclass
class Trajectory:
    """Recorded data of a single run.

    Attributes
    ----------
    metrics:
        Per-round :class:`~repro.core.metrics.ConfigurationMetrics` (empty
        for ``RecordLevel.NONE``).
    configurations:
        Per-round :class:`~repro.core.state.Configuration` snapshots (only
        for ``RecordLevel.FULL``).
    """

    metrics: List[ConfigurationMetrics] = field(default_factory=list)
    configurations: List[Configuration] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # derived series (vectorized views over the metric records)
    # ------------------------------------------------------------------ #
    def series(self, name: str) -> np.ndarray:
        """Extract a named per-round series from the metric records.

        Valid names: ``support_size``, ``agreement``, ``minority``,
        ``median_value``, ``majority_value``, ``agreement_fraction``.
        """
        if not self.metrics:
            return np.empty(0)
        if name == "agreement_fraction":
            return np.array([m.agreement_fraction for m in self.metrics], dtype=np.float64)
        if not hasattr(self.metrics[0], name):
            raise KeyError(f"unknown metric series {name!r}")
        return np.array([getattr(m, name) for m in self.metrics])

    @property
    def rounds(self) -> int:
        """Number of recorded rounds (excluding the initial state)."""
        if self.metrics:
            return len(self.metrics) - 1
        if self.configurations:
            return len(self.configurations) - 1
        return 0

    def support_series(self) -> np.ndarray:
        return self.series("support_size")

    def minority_series(self) -> np.ndarray:
        return self.series("minority")


class TrajectoryRecorder:
    """Incremental recorder used by the simulation engines."""

    def __init__(self, level: RecordLevel = RecordLevel.METRICS) -> None:
        self.level = level
        self.trajectory = Trajectory()

    def record(self, values: np.ndarray, round_index: int) -> None:
        """Record one round's state according to the configured level."""
        if self.level is RecordLevel.NONE:
            return
        if self.level is RecordLevel.FULL:
            cfg = Configuration.from_values(values)
            self.trajectory.configurations.append(cfg)
            self.trajectory.metrics.append(configuration_metrics(cfg, round_index))
        else:
            self.trajectory.metrics.append(configuration_metrics(values, round_index))

    def finish(self) -> Trajectory:
        """Return the completed trajectory."""
        return self.trajectory
