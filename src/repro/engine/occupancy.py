"""Exact occupancy-space simulation engine: O(m²) per round, independent of n.

The vectorized engine (:mod:`repro.engine.vectorized`) stores one value per
process and pays O(n) work per round.  But every anonymous symmetric rule —
in particular the paper's median rule — is a function of the configuration
only through its *occupancy vector* (how many processes hold each of the m
distinct values), and conditionally on the current occupancy the n per-process
updates are independent draws from a per-value-class outcome distribution.
One synchronous round therefore collapses to m multinomial draws:

    for each value class a with c_a holders,
        N_a ~ Multinomial(c_a, q^(a))          # q^(a) over the m classes
    c'_b = Σ_a N_a[b]

where ``q^(a)_b`` is the probability that a holder of the a-th smallest value
ends the round holding the b-th smallest value.  For the median-of-(k+1)
family this distribution has a closed form in the cumulative load fractions
``F_b`` (the same CDF the mean-field model iterates — see
:mod:`repro.analysis.meanfield`): the new value is ≤ the b-th value iff at
least ``⌊k/2⌋`` (own value already below) or ``⌊k/2⌋+1`` (own value above) of
the k uniform samples land at or below it, i.e. a binomial tail in ``F_b``.

This makes the engine **exact**: the occupancy vector it produces after each
round has *identically the same distribution* as counting the vectorized
engine's value array — verified by ``tests/test_engine_differential.py``.
It is not sample-path identical for a shared seed (the two engines consume
randomness differently), only equal in law.

Cost per round is O(m²) for the transition matrix and draws, with **no
dependence on n**, so n = 10⁸–10⁹ runs cost the same as n = 10⁴ for fixed m
(``benchmarks/bench_engine_occupancy.py``).

Supported rules: :class:`~repro.core.median_rule.MedianRule`,
:class:`~repro.core.median_rule.BestOfKMedianRule` (any k),
:class:`~repro.core.median_rule.MedianRuleWithoutReplacement` (exact finite-n
pair-without-replacement kernel), the single-choice baselines
(voter, minimum, maximum), and the majority family
(:class:`~repro.core.baseline_rules.TwoChoicesMajorityRule` — classic
3-majority — and :class:`~repro.core.baseline_rules.TwoChoicesRule` — classic
2-Choices), whose majority-of-k-samples outcome distributions also close over
the load pmf.  Rules may also provide their own kernel by defining
``occupancy_kernel(support, counts) -> (m, m) matrix``.

Adversaries act through budgeted *count edits*
(:meth:`repro.adversary.base.Adversary.corrupt_counts`), reusing the same
budget ledger as the vectorized engine.  Identity-tracking strategies
(sticky, hiding) are expressed exactly by tracking their victims' *occupancy*
instead of their identities: the engine splits each round's scatter into an
independent civilian draw and victim draw (:func:`occupancy_round_split`) and
reports the victims' new occupancy back to the adversary
(:meth:`~repro.adversary.base.Adversary.observe_victim_scatter`) — scattering
two disjoint subpopulations separately is distributionally identical to
scattering their union, so the split is exact, not an approximation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.adversary.base import Adversary, AdversaryTiming, NullAdversary
from repro.core.baseline_rules import (
    MaximumRule,
    MinimumRule,
    TwoChoicesMajorityRule,
    TwoChoicesRule,
    VoterRule,
)
from repro.core.consensus import AlmostStableCriterion, ConsensusStatus
from repro.core.median_rule import (
    BestOfKMedianRule,
    MedianRule,
    MedianRuleWithoutReplacement,
)
from repro.core.occupancy_state import (
    MATERIALIZE_LIMIT_DEFAULT,
    OccupancyState,
    occupancy_metrics,
)
from repro.core.rules import Rule
from repro.core.state import Configuration
from repro.engine import _multinomial as _mnk
from repro.engine.rng import make_rng
from repro.engine.run import SimulationResult
from repro.engine.trajectory import RecordLevel, Trajectory
from repro.engine.vectorized import default_max_rounds

__all__ = [
    "OCCUPANCY_RULES",
    "OCCUPANCY_KERNEL_RULE_TYPES",
    "binomial_sf",
    "median_outcome_matrix",
    "median_noreplace_outcome_matrix",
    "single_choice_outcome_matrix",
    "three_majority_outcome_matrix",
    "two_choices_outcome_matrix",
    "occupancy_outcome_profiles",
    "occupancy_transition_matrix",
    "occupancy_transition_matrix_batch",
    "occupancy_round",
    "occupancy_round_batch",
    "occupancy_round_split",
    "occupancy_round_batch_split",
    "simulate_occupancy",
]

#: Full-configuration trajectory recording is refused above this n.
_FULL_RECORD_LIMIT = 100_000

#: Registry names of the built-in rules with an occupancy-space kernel
#: (rules defining their own ``occupancy_kernel`` also work; this set exists
#: so sweeps can be filtered *before* work is spent).  Must track
#: :data:`OCCUPANCY_KERNEL_RULE_TYPES` below — the object-level source of
#: truth used by the engine dispatch.
OCCUPANCY_RULES = frozenset(
    {"median", "median-noreplace", "median-k", "voter", "minimum", "maximum",
     "three-majority", "two-choices-majority"}
)

#: The transition matrix has m² float64 entries; beyond this support width a
#: single round would allocate gigabytes, and the vectorized engine is the
#: better substrate anyway (occupancy wins only when m ≪ n).
MAX_SUPPORT_DEFAULT = 10_000

#: Rule classes :func:`occupancy_transition_matrix` can dispatch on (plus any
#: rule providing its own ``occupancy_kernel``).  Shared with the batch
#: layer's support checks so the two cannot drift.
OCCUPANCY_KERNEL_RULE_TYPES = (MedianRule, BestOfKMedianRule, VoterRule,
                               MinimumRule, MaximumRule,
                               TwoChoicesMajorityRule, TwoChoicesRule)


# ---------------------------------------------------------------------- #
# transition-matrix kernels
# ---------------------------------------------------------------------- #
def binomial_sf(k: int, r: int, x: np.ndarray) -> np.ndarray:
    """``P(Binomial(k, x) >= r)`` element-wise over success probabilities ``x``.

    Exact finite sum (k is the rule's small sample count, so no special
    functions are needed).
    """
    x = np.asarray(x, dtype=np.float64)
    if r <= 0:
        return np.ones_like(x)
    if r > k:
        return np.zeros_like(x)
    out = np.zeros_like(x)
    for j in range(r, k + 1):
        out += math.comb(k, j) * np.power(x, j) * np.power(1.0 - x, k - j)
    return np.clip(out, 0.0, 1.0)


def median_outcome_matrix(cdf: np.ndarray, k: int = 2) -> np.ndarray:
    """Outcome matrix of the median-of-(k+1) rule from the load CDF.

    ``cdf[b] = F_b`` is the fraction of processes holding a value ≤ the b-th
    smallest value.  Row ``a`` of the result is the outcome distribution
    ``q^(a)`` for a holder of the a-th value: with ``r = ⌊k/2⌋`` (the lower
    median's 0-based order statistic among the k+1 pooled values),

    * ``P(new ≤ b) = P(Bin(k, F_b) ≥ r)``     when ``b ≥ a`` (own value helps),
    * ``P(new ≤ b) = P(Bin(k, F_b) ≥ r + 1)`` when ``b < a``.

    For k = 2 this reduces to the classic median-of-three transition
    ``q_b = F_b² − F_{b−1}²`` below, ``(1−F_{b−1})² − (1−F_b)²`` above, and
    ``1 − F_{a−1}² − (1−F_a)²`` on the diagonal.

    ``cdf`` may carry leading batch dimensions ``(..., m)``; the result is the
    stacked ``(..., m, m)`` outcome tensor (one matrix per run — the kernel of
    the fused multi-run batch engine).
    """
    F = np.asarray(cdf, dtype=np.float64)
    m = F.shape[-1]
    if m == 0:
        return np.zeros(F.shape + (0,))
    r = k // 2
    s_hi = binomial_sf(k, r, F)       # P(new ≤ b) for b ≥ a
    s_lo = binomial_sf(k, r + 1, F)   # P(new ≤ b) for b < a

    # row-independent increments of the two CDF branches
    d_lo = np.diff(s_lo, prepend=0.0, axis=-1)    # used where b < a
    d_hi = np.diff(s_hi, prepend=0.0, axis=-1)    # used where b > a (b ≥ 1)
    s_lo_prev = np.concatenate(
        [np.zeros_like(s_lo[..., :1]), s_lo[..., :-1]], axis=-1)
    diag = s_hi - s_lo_prev                       # P(new = a) for a holder of a

    a_idx = np.arange(m)[:, None]
    b_idx = np.arange(m)[None, :]
    Q = np.where(b_idx < a_idx, d_lo[..., None, :],
                 np.where(b_idx > a_idx, d_hi[..., None, :], diag[..., None, :]))
    return _normalize_rows(Q)


def median_noreplace_outcome_matrix(counts: np.ndarray) -> np.ndarray:
    """Exact outcome matrix for the median rule sampling two *distinct others*.

    The ordered pair of contacts is uniform over distinct non-self process
    pairs, so for a holder of value class ``a`` (with cumulative counts
    ``C_b`` over all processes):

    * both contacts ≤ b (for b < a)  has probability ``C_b (C_b − 1) / D``
      (self holds a value above b, so all ``C_b`` such processes are others),
    * both contacts ≥ b (for b > a)  has probability ``U_b (U_b − 1) / D``
      with ``U_b = n − C_{b−1}`` (self holds a value below b),
    * where ``D = (n − 1)(n − 2)``.

    Differencing the two branches gives the off-diagonal masses and the
    diagonal takes the remainder.  Requires n ≥ 3 (the rule itself falls back
    to with-replacement sampling below that, and so does
    :func:`occupancy_transition_matrix`).

    ``counts`` may carry leading batch dimensions ``(..., m)``; every row of
    the batch must describe the same population size ``n``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    m = counts.shape[-1]
    n = int(counts.sum(axis=-1).ravel()[0]) if counts.size else 0
    if counts.ndim > 1 and np.any(counts.sum(axis=-1) != n):
        raise ValueError("batched without-replacement kernel needs a uniform n")
    if n < 3:
        raise ValueError("without-replacement kernel needs n >= 3")
    C = np.cumsum(counts, axis=-1).astype(np.float64)
    zeros = np.zeros_like(C[..., :1])
    C_prev = np.concatenate([zeros, C[..., :-1]], axis=-1)
    D = float(n - 1) * float(n - 2)

    below = C * (C - 1.0) / D                    # P(both others ≤ b), b < a
    above = (n - C_prev) * (n - C_prev - 1.0) / D  # P(both others ≥ b), b > a

    d_lo = np.diff(below, prepend=0.0, axis=-1)
    d_hi = -np.diff(above, append=0.0, axis=-1)
    below_prev = np.concatenate([zeros, below[..., :-1]], axis=-1)
    above_next = np.concatenate([above[..., 1:], zeros], axis=-1)
    diag = 1.0 - below_prev - above_next

    a_idx = np.arange(m)[:, None]
    b_idx = np.arange(m)[None, :]
    Q = np.where(b_idx < a_idx, d_lo[..., None, :],
                 np.where(b_idx > a_idx, d_hi[..., None, :], diag[..., None, :]))
    return _normalize_rows(Q)


def single_choice_outcome_matrix(cdf: np.ndarray, kind: str) -> np.ndarray:
    """Outcome matrices of the one-contact baselines (voter / minimum / maximum).

    ``cdf`` may carry leading batch dimensions ``(..., m)`` → ``(..., m, m)``.
    """
    F = np.asarray(cdf, dtype=np.float64)
    m = F.shape[-1]
    p = np.diff(F, prepend=0.0, axis=-1)
    a_idx = np.arange(m)[:, None]
    b_idx = np.arange(m)[None, :]
    if kind == "voter":
        Q = np.broadcast_to(p[..., None, :], F.shape[:-1] + (m, m)).copy()
    elif kind == "minimum":
        # adopt the sample iff it is smaller, keep own value otherwise
        F_prev = np.concatenate([np.zeros_like(F[..., :1]), F[..., :-1]], axis=-1)
        stay = 1.0 - F_prev                       # P(sample ≥ own value a)
        Q = np.where(b_idx < a_idx, p[..., None, :],
                     np.where(b_idx == a_idx, stay[..., None, :], 0.0))
    elif kind == "maximum":
        stay = F.copy()                           # P(sample ≤ own value a)
        Q = np.where(b_idx > a_idx, p[..., None, :],
                     np.where(b_idx == a_idx, stay[..., None, :], 0.0))
    else:
        raise ValueError(f"unknown single-choice kind {kind!r}")
    return _normalize_rows(Q)


def three_majority_outcome_matrix(cdf: np.ndarray) -> np.ndarray:
    """Outcome matrix of classic 3-majority (poll three, adopt their majority).

    The own value does not participate, so every row is the same distribution
    over the outcome of three i.i.d. samples from the load pmf ``p``: value
    ``b`` wins iff at least two samples equal it, or all three samples are
    distinct, include it, and the uniform tie-break picks it.  Summing the
    two cases collapses to the closed form

        ``q_b = p_b · (1 + p_b − Σ_c p_c²)``

    (the ``3·p_b²(1−p_b) + p_b³`` at-least-two-of-three mass plus
    ``p_b·((1−p_b)² − Σ_{c≠b} p_c²)`` from the tie-break), which sums to 1
    since ``Σ_b p_b² · 1 − Σ_b p_b · Σ_c p_c²`` cancels.

    ``cdf`` may carry leading batch dimensions ``(..., m)`` → ``(..., m, m)``.
    """
    F = np.asarray(cdf, dtype=np.float64)
    m = F.shape[-1]
    if m == 0:
        return np.zeros(F.shape + (0,))
    p = np.diff(F, prepend=0.0, axis=-1)
    s2 = np.sum(p * p, axis=-1, keepdims=True)
    q = p * (1.0 + p - s2)
    Q = np.broadcast_to(q[..., None, :], F.shape[:-1] + (m, m)).copy()
    return _normalize_rows(Q)


def two_choices_outcome_matrix(cdf: np.ndarray) -> np.ndarray:
    """Outcome matrix of classic 2-Choices (adopt iff both samples agree).

    A holder of value class ``a`` switches to ``b ≠ a`` iff both samples land
    on ``b`` (probability ``p_b²``) and keeps ``a`` otherwise:

    * ``Q[a, b] = p_b²``                      for ``b ≠ a``,
    * ``Q[a, a] = 1 − Σ_{b≠a} p_b² = 1 − Σ_c p_c² + p_a²``.

    ``cdf`` may carry leading batch dimensions ``(..., m)`` → ``(..., m, m)``.
    """
    F = np.asarray(cdf, dtype=np.float64)
    m = F.shape[-1]
    if m == 0:
        return np.zeros(F.shape + (0,))
    p = np.diff(F, prepend=0.0, axis=-1)
    p2 = p * p
    s2 = np.sum(p2, axis=-1, keepdims=True)
    diag = 1.0 - s2 + p2
    a_idx = np.arange(m)[:, None]
    b_idx = np.arange(m)[None, :]
    Q = np.where(b_idx == a_idx, diag[..., None, :], p2[..., None, :])
    return _normalize_rows(Q)


def _normalize_rows(Q: np.ndarray) -> np.ndarray:
    """Clip floating-point negatives and renormalize each row to sum to 1."""
    Q = np.clip(Q, 0.0, None)
    sums = Q.sum(axis=-1, keepdims=True)
    np.divide(Q, sums, out=Q, where=sums > 0)
    return Q


def _check_support_width(m: int) -> None:
    if m > MAX_SUPPORT_DEFAULT:
        raise ValueError(
            f"support width m={m} needs an m²={m * m:,}-entry transition matrix "
            f"({m * m * 8 / 1e9:.1f} GB); the occupancy engine targets m ≪ n — "
            "use the vectorized engine for wide supports"
        )


def occupancy_outcome_profiles(
        rule: Rule, counts: np.ndarray
) -> Optional[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Band profiles ``(lo, hi, diag)`` of a built-in rule's outcome matrix.

    Every built-in occupancy kernel produces a matrix of the form
    ``Q[a, b] = lo[b]`` for ``b < a``, ``hi[b]`` for ``b > a`` and
    ``diag[a]`` for ``b = a`` (up to the per-row clip/renormalization of
    :func:`_normalize_rows`, which cancels out of every conditional ratio a
    sampler draws from).  This banded structure is what lets the compiled
    backend scatter a whole run with O(m) binomial draws instead of O(m²)
    (:func:`repro.engine._multinomial.sample_scatter_banded`).

    ``counts`` may carry leading batch dimensions ``(..., m)``; the profiles
    come back with the same leading shape.  Returns ``None`` for rules
    outside the built-in families (including any rule providing its own
    ``occupancy_kernel`` hook — those go through the dense path).  Raises
    the same errors as :func:`occupancy_transition_matrix` for invalid
    inputs so routing through profiles never changes the error surface.
    """
    counts = np.asarray(counts, dtype=np.int64)
    _check_support_width(counts.shape[-1])
    n_per_row = counts.sum(axis=-1)
    if np.any(n_per_row == 0):
        raise ValueError("cannot build a transition for an empty population")
    if callable(getattr(rule, "occupancy_kernel", None)):
        return None
    if not isinstance(rule, OCCUPANCY_KERNEL_RULE_TYPES):
        return None
    cdf = np.cumsum(counts, axis=-1).astype(np.float64) / n_per_row[..., None]
    zeros = np.zeros_like(cdf[..., :1])

    if isinstance(rule, MedianRuleWithoutReplacement) and np.all(n_per_row >= 3):
        n = int(n_per_row.ravel()[0])
        if counts.ndim > 1 and np.any(n_per_row != n):
            raise ValueError(
                "batched without-replacement kernel needs a uniform n")
        C = np.cumsum(counts, axis=-1).astype(np.float64)
        C_prev = np.concatenate([zeros, C[..., :-1]], axis=-1)
        D = float(n - 1) * float(n - 2)
        below = C * (C - 1.0) / D
        above = (n - C_prev) * (n - C_prev - 1.0) / D
        lo = np.diff(below, prepend=0.0, axis=-1)
        hi = -np.diff(above, append=0.0, axis=-1)
        below_prev = np.concatenate([zeros, below[..., :-1]], axis=-1)
        above_next = np.concatenate([above[..., 1:], zeros], axis=-1)
        diag = 1.0 - below_prev - above_next
        return lo, hi, diag
    if isinstance(rule, (MedianRule, BestOfKMedianRule)):
        # MedianRuleWithoutReplacement with some n < 3 lands here too: the
        # rule itself falls back to with-replacement sampling below n = 3
        k = rule.k if isinstance(rule, BestOfKMedianRule) else 2
        r = k // 2
        s_hi = binomial_sf(k, r, cdf)
        s_lo = binomial_sf(k, r + 1, cdf)
        lo = np.diff(s_lo, prepend=0.0, axis=-1)
        hi = np.diff(s_hi, prepend=0.0, axis=-1)
        s_lo_prev = np.concatenate([zeros, s_lo[..., :-1]], axis=-1)
        diag = s_hi - s_lo_prev
        return lo, hi, diag

    p = np.diff(cdf, prepend=0.0, axis=-1)
    if isinstance(rule, VoterRule):
        return p, p, p
    if isinstance(rule, MinimumRule):
        F_prev = np.concatenate([zeros, cdf[..., :-1]], axis=-1)
        return p, np.zeros_like(p), 1.0 - F_prev
    if isinstance(rule, MaximumRule):
        return np.zeros_like(p), p, cdf
    if isinstance(rule, TwoChoicesMajorityRule):
        s2 = np.sum(p * p, axis=-1, keepdims=True)
        q = p * (1.0 + p - s2)
        return q, q, q
    if isinstance(rule, TwoChoicesRule):
        p2 = p * p
        s2 = np.sum(p2, axis=-1, keepdims=True)
        return p2, p2, 1.0 - s2 + p2
    return None


def _builtin_transition(rule: Rule, counts: np.ndarray) -> np.ndarray:
    """Shared rule-type dispatch; ``counts`` may be ``(m,)`` or batched ``(..., m)``."""
    n_per_row = counts.sum(axis=-1)
    if np.any(n_per_row == 0):
        raise ValueError("cannot build a transition for an empty population")
    cdf = np.cumsum(counts, axis=-1).astype(np.float64) / n_per_row[..., None]
    if isinstance(rule, MedianRuleWithoutReplacement):
        if np.all(n_per_row >= 3):
            return median_noreplace_outcome_matrix(counts)
        return median_outcome_matrix(cdf, k=2)  # the rule's own n<3 fallback
    if isinstance(rule, MedianRule):
        return median_outcome_matrix(cdf, k=2)
    if isinstance(rule, BestOfKMedianRule):
        return median_outcome_matrix(cdf, k=rule.k)
    if isinstance(rule, VoterRule):
        return single_choice_outcome_matrix(cdf, "voter")
    if isinstance(rule, MinimumRule):
        return single_choice_outcome_matrix(cdf, "minimum")
    if isinstance(rule, MaximumRule):
        return single_choice_outcome_matrix(cdf, "maximum")
    if isinstance(rule, TwoChoicesMajorityRule):
        return three_majority_outcome_matrix(cdf)
    if isinstance(rule, TwoChoicesRule):
        return two_choices_outcome_matrix(cdf)
    raise TypeError(
        f"rule {rule.name!r} has no occupancy-space kernel; supported rules are "
        "median, median-noreplace, median-k, voter, minimum, maximum, "
        "three-majority, two-choices-majority, or any rule defining "
        "occupancy_kernel(support, counts)"
    )


def occupancy_transition_matrix(rule: Rule, counts: np.ndarray,
                                support: Optional[np.ndarray] = None
                                ) -> np.ndarray:
    """Build the per-class outcome matrix ``Q`` of one round of ``rule``.

    Dispatches on the rule type; rules outside the built-in families may
    provide an ``occupancy_kernel(support, counts)`` method.  ``support`` is
    the bin-value array matching ``counts`` (the built-in kernels are
    label-free and ignore it; value-aware hooks receive whatever the caller
    tracked, or ``None`` when no labels exist at the call site).
    """
    counts = np.asarray(counts, dtype=np.int64)
    _check_support_width(counts.shape[0])
    if counts.sum() == 0:
        raise ValueError("cannot build a transition for an empty population")
    hook = getattr(rule, "occupancy_kernel", None)
    if callable(hook):
        return _normalize_rows(np.asarray(hook(support, counts),
                                          dtype=np.float64))
    return _builtin_transition(rule, counts)


def occupancy_transition_matrix_batch(rule: Rule, counts: np.ndarray,
                                      support: Optional[np.ndarray] = None
                                      ) -> np.ndarray:
    """Stacked ``(R, m, m)`` outcome tensor: one transition matrix per run.

    The built-in kernels are genuinely vectorized over the run axis (one pass
    of batched CDFs / binomial tails for the whole batch); rules providing a
    custom ``occupancy_kernel`` hook are offered the whole ``(R, m)`` batch
    first (hooks broadcasting over leading batch dims run vectorized), and
    only drop to a per-run loop when the batched call fails or returns the
    wrong shape.  ``support`` is forwarded to the hook exactly as in
    :func:`occupancy_transition_matrix`.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 2:
        raise ValueError(f"batched counts must be (R, m), got shape {counts.shape}")
    _check_support_width(counts.shape[1])
    if np.any(counts.sum(axis=1) == 0):
        raise ValueError("cannot build a transition for an empty population")
    hook = getattr(rule, "occupancy_kernel", None)
    if callable(hook):
        R, m = counts.shape
        try:
            batched = np.asarray(hook(support, counts), dtype=np.float64)
        except Exception:
            batched = None
        if batched is not None and batched.shape == (R, m, m):
            return _normalize_rows(batched)
        return np.stack([
            _normalize_rows(np.asarray(hook(support, row), dtype=np.float64))
            for row in counts
        ])
    return _builtin_transition(rule, counts)


# ---------------------------------------------------------------------- #
# the round and the run
# ---------------------------------------------------------------------- #
def _scatter_counts(counts: np.ndarray, Q: np.ndarray,
                    rng: np.random.Generator) -> np.ndarray:
    """Scatter ``counts`` through outcome matrix ``Q``: column sums of the flows.

    Routed through the exact-multinomial seam: the numpy backend draws
    ``rng.multinomial(counts, Q)`` bit-for-bit as before, the compiled
    backend runs the conditional-binomial cascade in native code.
    """
    return _mnk.scatter_column_sums(counts, Q, rng)


def _scatter_counts_batch(counts: np.ndarray, Q: np.ndarray,
                          rng: np.random.Generator) -> np.ndarray:
    """Batched scatter: ``(R, m)`` counts through the ``(R, m, m)`` tensor.

    Seam-routed like :func:`_scatter_counts`; the numpy backend keeps the
    historical draw-only-occupied-pairs filtering (and bit stream), the
    compiled backend skips empty bins inline.
    """
    return _mnk.scatter_column_sums_batch(counts, Q, rng)


def _banded_profiles_if_fast(rule: Rule, counts: np.ndarray
                             ) -> Optional[tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]]:
    """Profiles for the O(m)-draw banded scatter, when it is the right path.

    Only the compiled backend implements the pooled hazard walk natively;
    the numpy backend keeps the historical dense ``Generator.multinomial``
    bit stream, so banded routing is gated on the resolved backend (not
    just rule structure).
    """
    if not _mnk.use_compiled():
        return None
    return occupancy_outcome_profiles(rule, counts)


def occupancy_round(counts: np.ndarray, rule: Rule,
                    rng: np.random.Generator, *,
                    support: Optional[np.ndarray] = None) -> np.ndarray:
    """Advance one synchronous round in count space (exact, O(m²)).

    Each value class scatters its holders over the classes with one
    multinomial draw from its outcome distribution; the new occupancy is the
    column sum.  Population size is conserved exactly.  On the compiled
    backend, built-in rules take the banded O(m)-draw path and never build
    the m×m matrix at all.
    """
    counts = np.asarray(counts, dtype=np.int64)
    prof = _banded_profiles_if_fast(rule, counts)
    if prof is not None:
        lo, hi, diag = prof
        return _mnk.sample_scatter_banded(counts[None, :], lo, hi, diag,
                                          rng)[0]
    Q = occupancy_transition_matrix(rule, counts, support)
    return _scatter_counts(counts, Q, rng)


def occupancy_round_split(counts: np.ndarray, victim_counts: np.ndarray,
                          rule: Rule, rng: np.random.Generator, *,
                          support: Optional[np.ndarray] = None
                          ) -> tuple[np.ndarray, np.ndarray]:
    """One round with the victim subpopulation scattered separately (exact).

    ``victim_counts`` is the occupancy of a distinguished subpopulation
    (an identity-tracking adversary's victims) with ``victim_counts ≤ counts``
    bin-wise.  Conditionally on the pre-round occupancy all n per-process
    updates are independent draws from the per-class outcome distribution, so
    scattering civilians (``counts − victim_counts``) and victims as two
    independent multinomial programs — both through the transition matrix of
    the *total* counts — has exactly the same joint law as one combined
    scatter plus tracking which holders were victims.

    Returns ``(new_counts, new_victim_counts)``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    victim_counts = np.asarray(victim_counts, dtype=np.int64)
    civilians = counts - victim_counts
    if np.any(victim_counts < 0) or np.any(civilians < 0):
        raise ValueError(
            "victim occupancy out of sync with the population counts "
            "(victim_counts must satisfy 0 <= victim_counts <= counts)"
        )
    prof = _banded_profiles_if_fast(rule, counts)
    if prof is not None:
        # both subpopulations scatter through the *total* occupancy's
        # profiles, exactly as the dense path shares one Q
        lo, hi, diag = prof
        new_civilians = _mnk.sample_scatter_banded(civilians[None, :], lo, hi,
                                                   diag, rng)[0]
        new_victims = _mnk.sample_scatter_banded(victim_counts[None, :], lo,
                                                 hi, diag, rng)[0]
        return new_civilians + new_victims, new_victims
    Q = occupancy_transition_matrix(rule, counts, support)
    new_civilians = _scatter_counts(civilians, Q, rng)
    new_victims = _scatter_counts(victim_counts, Q, rng)
    return new_civilians + new_victims, new_victims


def occupancy_round_batch(counts: np.ndarray, rule: Rule,
                          rng: np.random.Generator, *,
                          support: Optional[np.ndarray] = None) -> np.ndarray:
    """Advance ``R`` independent runs one synchronous round (exact, O(R·m²)).

    ``counts`` has shape ``(R, m)``: run ``r`` scatters each of its value
    classes with one multinomial draw from that run's outcome distribution —
    all ``R·m`` multinomials are drawn in a single reshaped call, so the whole
    round is a handful of NumPy passes regardless of R.  Each run's population
    size is conserved exactly, and each row of the result is distributed
    identically to :func:`occupancy_round` applied to that row alone.
    """
    counts = np.asarray(counts, dtype=np.int64)
    prof = _banded_profiles_if_fast(rule, counts)
    if prof is not None:
        lo, hi, diag = prof
        return _mnk.sample_scatter_banded(counts, lo, hi, diag, rng)
    Q = occupancy_transition_matrix_batch(rule, counts, support)
    return _scatter_counts_batch(counts, Q, rng)


def occupancy_round_batch_split(counts: np.ndarray, victim_counts: np.ndarray,
                                rule: Rule, rng: np.random.Generator, *,
                                support: Optional[np.ndarray] = None
                                ) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`occupancy_round_split`: ``(R, m)`` counts and victims.

    Rows whose run has no victim tracking simply carry a zero victim row —
    scattering zero victims is a no-op, so mixed batches (some runs with an
    identity-tracking adversary, some without) stay one fused program.
    """
    counts = np.asarray(counts, dtype=np.int64)
    victim_counts = np.asarray(victim_counts, dtype=np.int64)
    civilians = counts - victim_counts
    if np.any(victim_counts < 0) or np.any(civilians < 0):
        raise ValueError(
            "victim occupancy out of sync with the population counts "
            "(victim_counts must satisfy 0 <= victim_counts <= counts)"
        )
    prof = _banded_profiles_if_fast(rule, counts)
    if prof is not None:
        lo, hi, diag = prof
        new_civilians = _mnk.sample_scatter_banded(civilians, lo, hi, diag, rng)
        new_victims = _mnk.sample_scatter_banded(victim_counts, lo, hi, diag,
                                                 rng)
        return new_civilians + new_victims, new_victims
    Q = occupancy_transition_matrix_batch(rule, counts, support)
    new_civilians = _scatter_counts_batch(civilians, Q, rng)
    new_victims = _scatter_counts_batch(victim_counts, Q, rng)
    return new_civilians + new_victims, new_victims


def _as_occupancy(initial: Union[Configuration, OccupancyState, np.ndarray, Sequence[int]]
                  ) -> OccupancyState:
    if isinstance(initial, OccupancyState):
        return initial
    if isinstance(initial, Configuration):
        return OccupancyState.from_configuration(initial)
    return OccupancyState.from_values(np.asarray(initial))


def simulate_occupancy(
    initial: Union[Configuration, OccupancyState, np.ndarray, Sequence[int]],
    rule: Rule | None = None,
    adversary: Adversary | None = None,
    *,
    seed: Optional[int | np.random.Generator] = None,
    max_rounds: Optional[int] = None,
    criterion: Optional[AlmostStableCriterion] = None,
    record: RecordLevel = RecordLevel.METRICS,
    stop_at_consensus: bool = True,
    stop_when_stable: bool = True,
    run_to_horizon: bool = False,
    admissible_values: Optional[np.ndarray] = None,
    materialize: Optional[bool] = None,
) -> SimulationResult:
    """Simulate one run entirely in occupancy space.

    Drop-in companion to :func:`repro.engine.vectorized.simulate`: same
    parameters, same stop rules, same :class:`SimulationResult` shape, but
    per-round cost O(m²) independent of n.  The produced run is *equal in
    distribution* to a vectorized run (not sample-path identical for a shared
    seed).

    Parameters beyond the vectorized engine's
    ----------------------------------------
    materialize:
        Whether ``result.initial`` / ``result.final`` are expanded to real
        :class:`Configuration` objects.  ``None`` (default) expands only when
        ``n <= 1_000_000``; otherwise the result carries
        :class:`OccupancyState` objects, which duck-type every query the
        analysis layer uses (``n``, ``num_values``, ``support``, ``loads``,
        ``agreement_fraction()``, ...).

    Notes
    -----
    * ``record=RecordLevel.FULL`` stores expanded configurations and is
      refused for n > 100_000.
    * The adversary must support count edits
      (:attr:`~repro.adversary.base.Adversary.supports_counts`).  Every
      shipped strategy does — the identity-tracking ones (sticky, hiding)
      through an exact victim-*occupancy* form: the engine splits each
      round's scatter into independent civilian and victim draws
      (:func:`occupancy_round_split`) and reports the victims' new occupancy
      back via
      :meth:`~repro.adversary.base.Adversary.observe_victim_scatter`.
      Only custom adversaries without a count-space form are rejected.
    """
    state = _as_occupancy(initial)
    rule = rule or MedianRule()
    adversary = adversary or NullAdversary()
    rng = make_rng(seed)
    n = state.n
    horizon = max_rounds if max_rounds is not None else default_max_rounds(n)
    if horizon < 0:
        raise ValueError("max_rounds must be non-negative")
    if adversary.budget > 0 and not adversary.supports_counts:
        raise NotImplementedError(
            f"{type(adversary).__name__} tracks process identities and cannot "
            "drive the occupancy engine; use the vectorized engine instead"
        )

    if criterion is None:
        tolerance = 4 * adversary.budget
        window = 10 if adversary.budget > 0 else 1
        criterion = AlmostStableCriterion(tolerance=tolerance, window=window)

    nonzero_support = state.support[state.counts > 0]
    admissible = np.unique(np.asarray(
        nonzero_support if admissible_values is None else admissible_values,
        dtype=np.int64))
    # fixed support for the whole run: current values ∪ adversary's palette,
    # so count edits can re-introduce extinct admissible values
    state = state.with_support(np.union1d(state.support, admissible))
    support = state.support
    counts = np.array(state.counts)

    if record is RecordLevel.FULL and n > _FULL_RECORD_LIMIT:
        raise ValueError(
            f"RecordLevel.FULL would materialize {n} values per round; "
            f"use METRICS (O(1) per round) above n={_FULL_RECORD_LIMIT}"
        )

    adversary.reset()
    trajectory = Trajectory()

    def _record(cnts: np.ndarray, t: int) -> None:
        if record is RecordLevel.NONE:
            return
        snap = OccupancyState(support=support, counts=cnts)
        trajectory.metrics.append(occupancy_metrics(snap, t))
        if record is RecordLevel.FULL:
            trajectory.configurations.append(snap.to_configuration())

    def _minority(cnts: np.ndarray) -> int:
        return n - int(cnts.max())

    def _consensus_value(cnts: np.ndarray) -> Optional[int]:
        nz = np.flatnonzero(cnts)
        if nz.shape[0] == 1:
            return int(support[nz[0]])
        return None

    _record(counts, 0)

    consensus_status = ConsensusStatus(reached=False, round=None, value=None)
    v0 = _consensus_value(counts)
    if v0 is not None:
        consensus_status = ConsensusStatus(reached=True, round=0, value=v0)

    streak = 1 if _minority(counts) <= criterion.tolerance else 0
    first_stable_round: Optional[int] = 0 if streak else None

    rounds_executed = 0
    for t in range(1, horizon + 1):
        if adversary.budget > 0 and adversary.timing is AdversaryTiming.BEFORE_SAMPLING:
            counts = adversary.corrupt_counts(support, counts, t, admissible, rng)

        victims = adversary.victim_counts(support) if adversary.budget > 0 else None
        if victims is not None:
            counts, new_victims = occupancy_round_split(counts, victims, rule,
                                                        rng, support=support)
            adversary.observe_victim_scatter(support, new_victims)
        else:
            counts = occupancy_round(counts, rule, rng, support=support)

        if adversary.budget > 0 and adversary.timing is AdversaryTiming.AFTER_SAMPLING:
            counts = adversary.corrupt_counts(support, counts, t, admissible, rng)

        rounds_executed = t
        _record(counts, t)

        if not consensus_status.reached:
            v = _consensus_value(counts)
            if v is not None:
                consensus_status = ConsensusStatus(reached=True, round=t, value=v)

        if _minority(counts) <= criterion.tolerance:
            if streak == 0:
                first_stable_round = t
            streak += 1
        else:
            streak = 0
            first_stable_round = None

        if run_to_horizon:
            continue
        if stop_at_consensus and consensus_status.reached and adversary.budget == 0:
            break
        if stop_when_stable and adversary.budget > 0 and streak >= criterion.window:
            break

    final_state = OccupancyState(support=support, counts=counts)
    if first_stable_round is not None and streak >= criterion.window:
        almost_status = ConsensusStatus(reached=True, round=first_stable_round,
                                        value=final_state.majority_value())
    else:
        almost_status = ConsensusStatus(reached=False, round=None, value=None)

    expand = (n <= MATERIALIZE_LIMIT_DEFAULT) if materialize is None else materialize
    if expand:
        if isinstance(initial, Configuration):
            result_initial = initial  # keep the caller's ball order
        else:
            result_initial = _as_occupancy(initial).to_configuration(limit=max(n, 1))
        result_final = final_state.to_configuration(limit=max(n, 1))
    else:
        result_initial = _as_occupancy(initial)
        result_final = final_state.compacted()

    return SimulationResult(
        initial=result_initial,
        final=result_final,
        rounds_executed=rounds_executed,
        consensus=consensus_status,
        almost_stable=almost_status,
        trajectory=trajectory,
        rule_name=rule.name,
        adversary_name=type(adversary).__name__,
        criterion=criterion,
        meta={
            "engine": "occupancy",
            "num_bins": int(support.shape[0]),
            "adversary_budget": adversary.budget,
            "horizon": horizon,
            "budget_ledger_total": adversary.ledger.total,
            "budget_ledger_ok": adversary.ledger.verify(),
        },
    )
