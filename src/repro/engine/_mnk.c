/* Compiled exact-multinomial kernel for the occupancy engines.
 *
 * Three entry points, all exact samplers (no normal approximations):
 *
 *   mnk_sample_flows   — dense conditional-binomial cascade: row i of the
 *                        output is one Multinomial(counts[i], probs[i]) draw,
 *                        decomposed into at most m-1 sequential binomial
 *                        draws with conditional success probabilities
 *                        p_j / (p_j + p_{j+1} + ... + p_{m-1}).
 *   mnk_scatter_sums   — same cascade, but rows are grouped into R runs of m
 *                        source bins each and only the per-run column sums
 *                        are accumulated (the occupancy engines never need
 *                        the full flow tensor, only the new occupancy).
 *   mnk_sample_banded  — pooled O(m)-draw sampler for banded outcome
 *                        matrices Q[a,b] = lo[b] (b<a) / hi[b] (b>a) /
 *                        diag[a] (b=a) up to per-row normalization, the
 *                        structure shared by every built-in occupancy rule.
 *                        Per source bin a trinomial split decides how many
 *                        balls go below / stay / go above; the below-movers
 *                        of all bins then land via one pooled downward
 *                        hazard walk (and symmetrically upward):
 *                        P(land at b | going below from a) = lo[b]/Lo[a-1]
 *                        with Lo[b] = sum_{j<=b} lo[j], and the walk's
 *                        conditional hazard lo[b]/Lo[b] telescopes to
 *                        exactly that law.  Balls are conditionally
 *                        independent given the pre-round occupancy, so
 *                        pooling across source bins is exact.  Row
 *                        normalization divides every ratio's numerator and
 *                        denominator by the same row total, so the
 *                        normalized and unnormalized profiles sample the
 *                        same law.
 *
 * Binomial draws use Hormann's BTRS transformed rejection (valid for
 * n*p >= 10, p <= 0.5; squeeze-accept fast path needs no transcendentals)
 * and unrolled CDF inversion below that, with p > 1/2 handled by the flip
 * symmetry k ~ n - Binomial(n, 1-p).  log(k!) comes from a 1024-entry table
 * plus a Stirling series (absolute error < 1e-12, far below the rejection
 * test's tolerance).
 *
 * RNG: xoshiro256++ seeded through splitmix64.  The caller draws one uint64
 * from its NumPy Generator per kernel call and passes it through
 * mnk_seed_state, so reproducibility is seed-exact *within* this backend
 * (the bit stream legitimately differs from NumPy's own multinomial).
 *
 * ABI: bump MNK_ABI_VERSION whenever a signature changes; the Python seam
 * refuses to load a mismatched shared object and falls back to NumPy.
 */

#include <stdint.h>
#include <stdlib.h>
#include <math.h>
#include <string.h>

#define MNK_ABI_VERSION 1

int64_t mnk_abi_version(void) { return MNK_ABI_VERSION; }

/* ---------------------------------------------------------------- RNG -- */

typedef struct { uint64_t s[4]; } xo256;

static inline uint64_t rotl(const uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

static inline uint64_t xo_next(xo256 *st) {
    const uint64_t r = rotl(st->s[0] + st->s[3], 23) + st->s[0];
    const uint64_t t = st->s[1] << 17;
    st->s[2] ^= st->s[0]; st->s[3] ^= st->s[1];
    st->s[1] ^= st->s[2]; st->s[0] ^= st->s[3];
    st->s[2] ^= t;        st->s[3] = rotl(st->s[3], 45);
    return r;
}

static inline double xo_double(xo256 *st) {
    return (xo_next(st) >> 11) * 0x1.0p-53;
}

static uint64_t splitmix64(uint64_t *x) {
    uint64_t z = (*x += 0x9E3779B97f4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

void mnk_seed_state(uint64_t seed, uint64_t *out4) {
    uint64_t sm = seed;
    out4[0] = splitmix64(&sm); out4[1] = splitmix64(&sm);
    out4[2] = splitmix64(&sm); out4[3] = splitmix64(&sm);
}

/* ------------------------------------------------------------- log(k!) -- */

#define LFACT_N 1024
static double lfact_tab[LFACT_N];
static int lfact_ready = 0;

static void init_tables(void) {
    if (lfact_ready) return;
    lfact_tab[0] = 0.0;
    for (int i = 1; i < LFACT_N; i++)
        lfact_tab[i] = lfact_tab[i - 1] + log((double)i);
    lfact_ready = 1;
}

/* log(k!): table for small k, Stirling series otherwise (|err| < 1e-12). */
static inline double lfact(double k) {
    if (k < (double)LFACT_N) return lfact_tab[(int64_t)k];
    const double kk = k + 1.0, kk2 = kk * kk;
    return (kk - 0.5) * log(kk) - kk + 0.9189385332046727
           + (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kk2) / kk2) / kk;
}

/* ------------------------------------------------------ binomial draws -- */

static int64_t binom_inversion(xo256 *st, int64_t n, double p) {
    const double q = 1.0 - p, s = p / q;
    double f = exp((double)n * log1p(-p));
    double u = xo_double(st);
    int64_t x = 0;
    const double a = (double)(n + 1) * s;
    for (;;) {
        if (u <= f) return x;
        u -= f; x += 1;
        f *= (a / (double)x - s);
        if (x >= n) return n;
    }
}

/* Hormann (1993) BTRS transformed rejection with squeeze-accept fast path.
 * Valid for n*p >= 10, p <= 0.5; the squeeze accepts ~86% of attempts with
 * zero transcendental calls, and the slow-path constants are computed lazily
 * on the first non-squeeze attempt. */
static int64_t binom_btrs(xo256 *st, int64_t n, double p) {
    const double nf = (double)n, q = 1.0 - p;
    const double spq = sqrt(nf * p * q);
    const double b = 1.15 + 2.53 * spq;
    const double a = -0.0873 + 0.0248 * b + 0.01 * p;
    const double c = nf * p + 0.5;
    const double vr = 0.92 - 4.2 / b;
    double alpha = 0.0, lpq = 0.0, h = 0.0, mode = 0.0;
    int slow_ready = 0;
    for (;;) {
        double u = xo_double(st) - 0.5;
        double v = xo_double(st);
        double us = 0.5 - fabs(u);
        double kf = floor((2.0 * a / us + b) * u + c);
        if (kf < 0.0 || kf > nf) continue;
        if (us >= 0.07 && v <= vr) return (int64_t)kf;
        if (!slow_ready) {
            alpha = (2.83 + 5.1 / b) * spq;
            lpq = log(p / q);
            mode = floor((nf + 1.0) * p);
            h = lfact(mode) + lfact(nf - mode);
            slow_ready = 1;
        }
        v = log(v * alpha / (a / (us * us) + b));
        if (v <= h - lfact(kf) - lfact(nf - kf) + (kf - mode) * lpq)
            return (int64_t)kf;
    }
}

static inline int64_t binom_draw(xo256 *st, int64_t n, double p) {
    if (p <= 0.0 || n <= 0) return 0;
    if (p >= 1.0) return n;
    const int flip = p > 0.5;
    const double pp = flip ? 1.0 - p : p;
    int64_t x = ((double)n * pp < 10.0) ? binom_inversion(st, n, pp)
                                        : binom_btrs(st, n, pp);
    return flip ? n - x : x;
}

/* ------------------------------------------------------- dense cascade -- */

/* One multinomial row: rem balls over p[0..m-1] into o[0..m-1]. */
static inline void cascade_row(xo256 *st, int64_t rem, const double *p,
                               int64_t m, int64_t *o) {
    double psum = 1.0;
    int64_t j = 0;
    for (; j < m - 1; j++) {
        const double pj = p[j];
        if (pj <= 0.0) { o[j] = 0; continue; }
        const double cond = pj / psum;
        const int64_t d = (cond >= 1.0) ? rem : binom_draw(st, rem, cond);
        o[j] = d; rem -= d; psum -= pj;
        if (rem <= 0 || psum <= 0.0) { j++; break; }
    }
    if (j < m) memset(o + j, 0, sizeof(int64_t) * (size_t)(m - j));
    if (m > 0 && rem > 0) o[m - 1] = rem;
}

void mnk_sample_flows(const int64_t *counts, const double *probs,
                      int64_t rows, int64_t m, const uint64_t *state4,
                      uint64_t *state4_out, int64_t *out) {
    init_tables();
    xo256 st = {{state4[0], state4[1], state4[2], state4[3]}};
    for (int64_t r = 0; r < rows; r++) {
        int64_t *o = out + (size_t)r * m;
        if (counts[r] <= 0) { memset(o, 0, sizeof(int64_t) * (size_t)m); continue; }
        cascade_row(&st, counts[r], probs + (size_t)r * m, m, o);
    }
    memcpy(state4_out, st.s, sizeof(st.s));
}

/* R runs of m source rows each; out is the (R, m) per-run column sums.
 * counts/probs have R*m rows.  Zero-count rows cost one compare. */
void mnk_scatter_sums(const int64_t *counts, const double *probs,
                      int64_t R, int64_t m, const uint64_t *state4,
                      uint64_t *state4_out, int64_t *out) {
    init_tables();
    xo256 st = {{state4[0], state4[1], state4[2], state4[3]}};
    int64_t *row = (int64_t *)malloc(sizeof(int64_t) * (size_t)m);
    memset(out, 0, sizeof(int64_t) * (size_t)R * (size_t)m);
    for (int64_t r = 0; r < R; r++) {
        int64_t *o = out + (size_t)r * m;
        for (int64_t a = 0; a < m; a++) {
            const int64_t c = counts[(size_t)r * m + a];
            if (c <= 0) continue;
            cascade_row(&st, c, probs + ((size_t)r * m + a) * m, m, row);
            for (int64_t b = 0; b < m; b++) o[b] += row[b];
        }
    }
    free(row);
    memcpy(state4_out, st.s, sizeof(st.s));
}

/* ------------------------------------------------------- banded walker -- */

/* counts/lo/hi/diag are (R, m) row-major; out is the (R, m) new occupancy.
 * Negative profile entries (floating-point noise) are clamped to zero, the
 * same clip _normalize_rows applies on the dense path. */
void mnk_sample_banded(const int64_t *counts, const double *lo,
                       const double *hi, const double *diag,
                       int64_t R, int64_t m, const uint64_t *state4,
                       uint64_t *state4_out, int64_t *out) {
    init_tables();
    xo256 st = {{state4[0], state4[1], state4[2], state4[3]}};
    double *loc = (double *)malloc(sizeof(double) * (size_t)m);
    double *hic = (double *)malloc(sizeof(double) * (size_t)m);
    double *Lo  = (double *)malloc(sizeof(double) * (size_t)m);
    double *Hi  = (double *)malloc(sizeof(double) * (size_t)m);
    int64_t *below = (int64_t *)malloc(sizeof(int64_t) * (size_t)m);
    int64_t *above = (int64_t *)malloc(sizeof(int64_t) * (size_t)m);
    memset(out, 0, sizeof(int64_t) * (size_t)R * (size_t)m);

    for (int64_t r = 0; r < R; r++) {
        const int64_t *c = counts + (size_t)r * m;
        const double *lr = lo + (size_t)r * m;
        const double *hr = hi + (size_t)r * m;
        const double *dr = diag + (size_t)r * m;
        int64_t *o = out + (size_t)r * m;

        double acc = 0.0;
        for (int64_t b = 0; b < m; b++) {
            loc[b] = lr[b] > 0.0 ? lr[b] : 0.0;
            acc += loc[b];
            Lo[b] = acc;
        }
        acc = 0.0;
        for (int64_t b = m - 1; b >= 0; b--) {
            hic[b] = hr[b] > 0.0 ? hr[b] : 0.0;
            acc += hic[b];
            Hi[b] = acc;
        }

        /* trinomial split per occupied source bin: below / stay / above */
        for (int64_t a = 0; a < m; a++) {
            below[a] = 0; above[a] = 0;
            const int64_t ca = c[a];
            if (ca <= 0) continue;
            const double wB = (a > 0) ? Lo[a - 1] : 0.0;
            const double wD = dr[a] > 0.0 ? dr[a] : 0.0;
            const double wA = (a < m - 1) ? Hi[a + 1] : 0.0;
            const double s = wB + wD + wA;
            if (s <= 0.0) { o[a] += ca; continue; }  /* degenerate row: stay */
            const int64_t nb = binom_draw(&st, ca, wB / s);
            const int64_t rest = ca - nb;
            const double dA = wD + wA;
            const int64_t na = (dA > 0.0) ? binom_draw(&st, rest, wA / dA) : 0;
            below[a] = nb; above[a] = na;
            o[a] += rest - na;
        }

        /* pooled downward walk: P(land at b | reached b) = lo[b]/Lo[b] */
        int64_t pending = 0;
        for (int64_t b = m - 2; b >= 0; b--) {
            pending += below[b + 1];
            if (pending <= 0) continue;
            int64_t land;
            if (b == 0 || Lo[b] <= 0.0) land = pending;
            else {
                const double hz = loc[b] / Lo[b];
                land = (hz >= 1.0) ? pending : binom_draw(&st, pending, hz);
            }
            o[b] += land; pending -= land;
        }

        /* pooled upward walk, mirror image */
        pending = 0;
        for (int64_t b = 1; b < m; b++) {
            pending += above[b - 1];
            if (pending <= 0) continue;
            int64_t land;
            if (b == m - 1 || Hi[b] <= 0.0) land = pending;
            else {
                const double hz = hic[b] / Hi[b];
                land = (hz >= 1.0) ? pending : binom_draw(&st, pending, hz);
            }
            o[b] += land; pending -= land;
        }
    }

    free(loc); free(hic); free(Lo); free(Hi); free(below); free(above);
    memcpy(state4_out, st.s, sizeof(st.s));
}
