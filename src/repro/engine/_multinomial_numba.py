"""numba provider for the exact-multinomial seam.

This module is imported *only* inside the seam's feature detection
(:mod:`repro.engine._multinomial`), wrapped in a try/except — a missing,
broken, or ABI-mismatched numba must never break ``import repro.engine``.
Keep the top-level import surface minimal and the jitted kernels on
long-supported numba features only (scalar ``np.random.binomial``,
``np.random.seed``, plain loops).

The kernels mirror ``_mnk.c`` exactly in structure (conditional-binomial
cascade, grouped column sums, banded pooled walker); the drawn bit streams
differ between the two compiled providers, which is fine — reproducibility
is backend-scoped by design (see the seam's module docstring).

Threading note: the row loops are deliberately sequential (no ``prange``).
One RNG stream per call is what makes a compiled draw reproducible from the
single bridged seed; per-thread streams would trade that away for a speedup
the target boxes (1–2 cores in CI) cannot realize.
"""

from __future__ import annotations

import numpy as np
from numba import njit

NAME = "numba"


@njit(cache=True)
def _binom(n, p):
    if p <= 0.0 or n <= 0:
        return 0
    if p >= 1.0:
        return n
    # compiled-RNG bridge: reseeded per call from the engine Generator
    return np.random.binomial(n, p)  # repro-lint: disable=rng-discipline


@njit(cache=True)
def _flows(counts, probs, seed, out):
    np.random.seed(seed)  # repro-lint: disable=rng-discipline
    rows, m = probs.shape
    for r in range(rows):
        for j in range(m):
            out[r, j] = 0
        rem = counts[r]
        if rem <= 0:
            continue
        psum = 1.0
        for j in range(m - 1):
            pj = probs[r, j]
            if pj <= 0.0:
                continue
            cond = pj / psum
            if cond >= 1.0:
                d = rem
            else:
                d = _binom(rem, cond)
            out[r, j] = d
            rem -= d
            psum -= pj
            if rem <= 0 or psum <= 0.0:
                break
        if rem > 0:
            out[r, m - 1] = rem


@njit(cache=True)
def _scatter_sums(counts, probs, R, m, seed, out):
    np.random.seed(seed)  # repro-lint: disable=rng-discipline
    for r in range(R):
        for a in range(m):
            rem = counts[r * m + a]
            if rem <= 0:
                continue
            psum = 1.0
            for j in range(m - 1):
                pj = probs[r * m + a, j]
                if pj <= 0.0:
                    continue
                cond = pj / psum
                if cond >= 1.0:
                    d = rem
                else:
                    d = _binom(rem, cond)
                out[r, j] += d
                rem -= d
                psum -= pj
                if rem <= 0 or psum <= 0.0:
                    break
            if rem > 0:
                out[r, m - 1] += rem


@njit(cache=True)
def _banded(counts, lo, hi, diag, seed, out):
    np.random.seed(seed)  # repro-lint: disable=rng-discipline
    R, m = counts.shape
    loc = np.empty(m, np.float64)
    hic = np.empty(m, np.float64)
    Lo = np.empty(m, np.float64)
    Hi = np.empty(m, np.float64)
    below = np.empty(m, np.int64)
    above = np.empty(m, np.int64)
    for r in range(R):
        acc = 0.0
        for b in range(m):
            loc[b] = lo[r, b] if lo[r, b] > 0.0 else 0.0
            acc += loc[b]
            Lo[b] = acc
        acc = 0.0
        for b in range(m - 1, -1, -1):
            hic[b] = hi[r, b] if hi[r, b] > 0.0 else 0.0
            acc += hic[b]
            Hi[b] = acc

        for a in range(m):
            below[a] = 0
            above[a] = 0
            ca = counts[r, a]
            if ca <= 0:
                continue
            wB = Lo[a - 1] if a > 0 else 0.0
            wD = diag[r, a] if diag[r, a] > 0.0 else 0.0
            wA = Hi[a + 1] if a < m - 1 else 0.0
            s = wB + wD + wA
            if s <= 0.0:
                out[r, a] += ca
                continue
            nb = _binom(ca, wB / s)
            rest = ca - nb
            dA = wD + wA
            na = _binom(rest, wA / dA) if dA > 0.0 else 0
            below[a] = nb
            above[a] = na
            out[r, a] += rest - na

        pending = 0
        for b in range(m - 2, -1, -1):
            pending += below[b + 1]
            if pending <= 0:
                continue
            if b == 0 or Lo[b] <= 0.0:
                land = pending
            else:
                hz = loc[b] / Lo[b]
                land = pending if hz >= 1.0 else _binom(pending, hz)
            out[r, b] += land
            pending -= land

        pending = 0
        for b in range(1, m):
            pending += above[b - 1]
            if pending <= 0:
                continue
            if b == m - 1 or Hi[b] <= 0.0:
                land = pending
            else:
                hz = hic[b] / Hi[b]
                land = pending if hz >= 1.0 else _binom(pending, hz)
            out[r, b] += land
            pending -= land


def _seed32(seed: int) -> np.uint32:
    return np.uint32(int(seed) & 0xFFFFFFFF)


def sample_flows(counts: np.ndarray, probs: np.ndarray, seed: int) -> np.ndarray:
    out = np.zeros(probs.shape, dtype=np.int64)
    _flows(counts, probs, _seed32(seed), out)
    return out


def scatter_sums(counts: np.ndarray, probs: np.ndarray, R: int, m: int,
                 seed: int) -> np.ndarray:
    out = np.zeros((R, m), dtype=np.int64)
    _scatter_sums(counts, probs, R, m, _seed32(seed), out)
    return out


def sample_banded(counts: np.ndarray, lo: np.ndarray, hi: np.ndarray,
                  diag: np.ndarray, seed: int) -> np.ndarray:
    out = np.zeros(counts.shape, dtype=np.int64)
    _banded(counts, lo, hi, diag, _seed32(seed), out)
    return out


def warm_up() -> None:
    """Force-compile every kernel and sanity-check trivial draws.

    Raises on any numba failure — the seam treats that as "provider
    unavailable" and moves down the detection chain.
    """
    eye = np.eye(3, dtype=np.float64)
    c = np.array([5, 0, 7], dtype=np.int64)
    flows = sample_flows(c, eye, 12345)
    if not (np.array_equal(np.diag(flows), c) and flows.sum() == c.sum()):
        raise RuntimeError("numba sample_flows failed its identity smoke test")
    sums = scatter_sums(c, eye, 1, 3, 12345)
    if not np.array_equal(sums[0], c):
        raise RuntimeError("numba scatter_sums failed its identity smoke test")
    z = np.zeros((1, 3), dtype=np.float64)
    one = np.ones((1, 3), dtype=np.float64)
    stay = sample_banded(c[None, :], z, z, one, 12345)
    if not np.array_equal(stay[0], c):
        raise RuntimeError("numba sample_banded failed its stay smoke test")
