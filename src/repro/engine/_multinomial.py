"""Feature-detected seam for exact-multinomial sampling.

Every fast path in the repository bottoms out in drawing multinomial flows
(``BENCH_batch_fused.json``: at m = 64 a dense round costs ~R·m² sequential
binomial draws inside ``Generator.multinomial``, and the fused engine's win
collapses from ~60× at m = 8 to ~3–4×).  This module is the single seam the
occupancy engines sample through, with two interchangeable *backends*:

``numpy``
    ``Generator.multinomial`` — bit-for-bit the code the engines ran before
    the seam existed, so every seed-pinned golden result stays valid, and
    the trusted reference the compiled backend is certified against.

``compiled``
    A conditional-binomial cascade with no Python dispatch per row, provided
    by the first working entry in the detection chain *numba → cc* (a
    C kernel ``_mnk.c`` compiled on first use with the system C compiler and
    loaded via ctypes).  The compiled backend additionally offers a pooled
    *banded* sampler exploiting the band structure every built-in occupancy
    rule shares (O(m) draws per run instead of O(m²) — see ``_mnk.c``).

Selection: explicit ``backend=`` argument > :func:`set_multinomial_backend`
> the ``REPRO_MULTINOMIAL_KERNEL`` environment variable > ``auto``.  Values:
``auto`` (compiled when available, else numpy), ``compiled``, ``numpy``, and
the power-user pins ``numba`` / ``cc``.  Feature detection runs at *first
sampling call*, never at import, and catches any exception — a missing,
broken, or ABI-mismatched provider degrades to NumPy with a single
structured :class:`MultinomialKernelWarning` per process.

Reproducibility contract: seed-exact **within** a backend.  The compiled
providers bridge the caller's ``numpy.random.Generator`` by drawing one
64-bit seed per kernel call, so a fixed seed gives identical results on the
same backend, while the two backends produce different — but identically
distributed — streams (certified by ``tests/test_engine_differential.py``
and ``tests/test_multinomial_seam.py``).  The resolved kernel id is stamped
into store provenance so every cached cell is attributable.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.robustness.faults import fault_point

__all__ = [
    "ENV_VAR",
    "BACKEND_CHOICES",
    "DRAW_STATS",
    "KernelInfo",
    "MultinomialKernelWarning",
    "multinomial_backend_info",
    "multinomial_kernel_id",
    "resolve_multinomial_backend",
    "set_multinomial_backend",
    "use_compiled",
    "sample_flows",
    "sample_flows_batch",
    "scatter_column_sums",
    "scatter_column_sums_batch",
    "sample_scatter_banded",
]

ENV_VAR = "REPRO_MULTINOMIAL_KERNEL"
BUILD_DIR_ENV_VAR = "REPRO_MULTINOMIAL_BUILD_DIR"
BACKEND_CHOICES = ("auto", "compiled", "numpy", "numba", "cc")

#: Per-process tallies of draws through this seam.  Kept as plain dict
#: increments (no telemetry check) because the seam is the innermost hot
#: path; :func:`repro.experiments.runner.run_cell` snapshots deltas into
#: the trace when tracing is armed.
DRAW_STATS = {"calls": 0, "rows": 0}

#: Must match MNK_ABI_VERSION in _mnk.c; a stale shared object is rebuilt.
_ABI_VERSION = 1

_DETECTION_ORDER = {
    "auto": ("numba", "cc"),
    "compiled": ("numba", "cc"),
    "numba": ("numba",),
    "cc": ("cc",),
}


class MultinomialKernelWarning(UserWarning):
    """A requested compiled multinomial backend was unavailable; NumPy ran."""


@dataclass(frozen=True)
class KernelInfo:
    """The outcome of one backend resolution."""

    requested: str   #: what was asked for ("auto", "compiled", ...)
    resolved: str    #: "compiled" or "numpy"
    provider: str    #: "numba", "cc", or "numpy"
    detail: str = ""  #: per-provider failure summary when a fallback happened

    @property
    def kernel_id(self) -> str:
        """Stable provenance string: ``numpy``, ``compiled:numba``, ``compiled:cc``."""
        if self.resolved == "numpy":
            return "numpy"
        return f"compiled:{self.provider}"


# ---------------------------------------------------------------------- #
# the cc provider: build _mnk.c on first use, load via ctypes
# ---------------------------------------------------------------------- #
_SRC = Path(__file__).with_name("_mnk.c")

_u64p = np.ctypeslib.ndpointer(np.uint64, flags="C_CONTIGUOUS")
_i64p = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
_f64p = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")


class _CcKernel:
    """ctypes wrapper around the compiled ``_mnk`` shared object."""

    NAME = "cc"

    def __init__(self) -> None:
        # fault seam: an injected failure here is indistinguishable from a
        # real broken toolchain, so it exercises the production fallback
        # (detection chain → NumPy + one MultinomialKernelWarning)
        fault_point("kernel.compile", provider=self.NAME)
        lib = ctypes.CDLL(str(self._ensure_built()))
        lib.mnk_abi_version.restype = ctypes.c_int64
        lib.mnk_abi_version.argtypes = []
        abi = int(lib.mnk_abi_version())
        if abi != _ABI_VERSION:
            raise RuntimeError(
                f"_mnk ABI mismatch: shared object reports {abi}, "
                f"seam expects {_ABI_VERSION}")
        lib.mnk_seed_state.restype = None
        lib.mnk_seed_state.argtypes = [ctypes.c_uint64, _u64p]
        lib.mnk_sample_flows.restype = None
        lib.mnk_sample_flows.argtypes = [
            _i64p, _f64p, ctypes.c_int64, ctypes.c_int64, _u64p, _u64p, _i64p]
        lib.mnk_scatter_sums.restype = None
        lib.mnk_scatter_sums.argtypes = [
            _i64p, _f64p, ctypes.c_int64, ctypes.c_int64, _u64p, _u64p, _i64p]
        lib.mnk_sample_banded.restype = None
        lib.mnk_sample_banded.argtypes = [
            _i64p, _f64p, _f64p, _f64p, ctypes.c_int64, ctypes.c_int64,
            _u64p, _u64p, _i64p]
        self._lib = lib
        self._smoke_test()

    # -- build ---------------------------------------------------------- #
    @staticmethod
    def _build_dir() -> Path:
        override = os.environ.get(BUILD_DIR_ENV_VAR)
        if override:
            return Path(override)
        return _SRC.parent / "_build"

    def _ensure_built(self) -> Path:
        if not _SRC.is_file():
            raise FileNotFoundError(f"kernel source missing: {_SRC}")
        build_dir = self._build_dir()
        try:
            build_dir.mkdir(parents=True, exist_ok=True)
            probe = build_dir / ".writable"
            probe.touch()
            probe.unlink()
        except OSError:
            build_dir = Path(tempfile.mkdtemp(prefix="repro_mnk_"))
        so_path = build_dir / f"_mnk_abi{_ABI_VERSION}.so"
        if so_path.is_file() and so_path.stat().st_mtime >= _SRC.stat().st_mtime:
            return so_path
        cc = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc") \
            or shutil.which("clang")
        if cc is None:
            raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")
        tmp = so_path.with_suffix(f".tmp{os.getpid()}.so")
        base = [cc, "-O3", "-shared", "-fPIC", "-o", str(tmp), str(_SRC), "-lm"]
        for extra in (["-march=native"], []):
            cmd = base[:2] + extra + base[2:]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode == 0:
                break
        else:
            raise RuntimeError(
                f"compiling {_SRC.name} failed: {proc.stderr.strip()[:500]}")
        os.replace(tmp, so_path)  # atomic: concurrent builders race safely
        return so_path

    # -- draws ---------------------------------------------------------- #
    def sample_flows(self, counts: np.ndarray, probs: np.ndarray,
                     seed: int) -> np.ndarray:
        rows, m = probs.shape
        out = np.empty((rows, m), dtype=np.int64)
        st = np.empty(4, dtype=np.uint64)
        self._lib.mnk_seed_state(ctypes.c_uint64(int(seed) & (2**64 - 1)), st)
        self._lib.mnk_sample_flows(counts, probs, rows, m, st, st, out)
        return out

    def scatter_sums(self, counts: np.ndarray, probs: np.ndarray,
                     R: int, m: int, seed: int) -> np.ndarray:
        out = np.empty((R, m), dtype=np.int64)
        st = np.empty(4, dtype=np.uint64)
        self._lib.mnk_seed_state(ctypes.c_uint64(int(seed) & (2**64 - 1)), st)
        self._lib.mnk_scatter_sums(counts, probs, R, m, st, st, out)
        return out

    def sample_banded(self, counts: np.ndarray, lo: np.ndarray,
                      hi: np.ndarray, diag: np.ndarray,
                      seed: int) -> np.ndarray:
        R, m = counts.shape
        out = np.empty((R, m), dtype=np.int64)
        st = np.empty(4, dtype=np.uint64)
        self._lib.mnk_seed_state(ctypes.c_uint64(int(seed) & (2**64 - 1)), st)
        self._lib.mnk_sample_banded(counts, lo, hi, diag, R, m, st, st, out)
        return out

    # -- detection smoke test ------------------------------------------- #
    def _smoke_test(self) -> None:
        eye = np.eye(3, dtype=np.float64)
        c = np.array([5, 0, 7], dtype=np.int64)
        flows = self.sample_flows(c, eye, 12345)
        if not (np.array_equal(np.diag(flows), c) and flows.sum() == c.sum()):
            raise RuntimeError("cc sample_flows failed its identity smoke test")
        sums = self.scatter_sums(c, eye, 1, 3, 12345)
        if not np.array_equal(sums[0], c):
            raise RuntimeError("cc scatter_sums failed its identity smoke test")
        z = np.zeros((1, 3), dtype=np.float64)
        one = np.ones((1, 3), dtype=np.float64)
        stay = self.sample_banded(c[None, :], z, z, one, 12345)
        if not np.array_equal(stay[0], c):
            raise RuntimeError("cc sample_banded failed its stay smoke test")
        third = np.full((1, 3), 1.0 / 3.0)
        mix = self.sample_flows(np.array([1000], dtype=np.int64),
                                third, 99)
        if mix.sum() != 1000 or mix.min() < 0:
            raise RuntimeError("cc sample_flows failed its sum smoke test")


class _NumbaProvider:
    """Thin adapter giving the numba module the same method surface as cc."""

    NAME = "numba"

    def __init__(self) -> None:
        fault_point("kernel.compile", provider=self.NAME)
        from repro.engine import _multinomial_numba as mod
        mod.warm_up()
        self._mod = mod

    def sample_flows(self, counts, probs, seed):
        return self._mod.sample_flows(counts, probs, seed)

    def scatter_sums(self, counts, probs, R, m, seed):
        return self._mod.scatter_sums(counts, probs, R, m, seed)

    def sample_banded(self, counts, lo, hi, diag, seed):
        return self._mod.sample_banded(counts, lo, hi, diag, seed)


_PROVIDER_FACTORIES = {"numba": _NumbaProvider, "cc": _CcKernel}

# ---------------------------------------------------------------------- #
# detection + resolution state
# ---------------------------------------------------------------------- #
_lock = threading.Lock()
_providers: dict[str, object] = {}      # name -> provider instance or None
_provider_errors: dict[str, str] = {}
_configured: Optional[str] = None       # set_multinomial_backend override
_warned: set = set()                    # requested modes already warned for


def _get_provider(name: str):
    """Build-or-fetch a provider; any exception marks it unavailable."""
    import time as _time

    with _lock:
        if name in _providers:
            return _providers[name]
        t0 = _time.perf_counter()
        try:
            provider = _PROVIDER_FACTORIES[name]()
        except Exception as exc:  # detection must never propagate
            _providers[name] = None
            _provider_errors[name] = f"{type(exc).__name__}: {exc}"
            _trace_detection(name, _time.perf_counter() - t0, ok=False)
            return None
        _providers[name] = provider
        _trace_detection(name, _time.perf_counter() - t0, ok=True)
        return provider


def _trace_detection(provider: str, elapsed: float, ok: bool) -> None:
    """Record one provider detection/build in the trace (cold path only)."""
    try:
        from repro.obs import trace as obs_trace
        from repro.obs import metrics as obs_metrics
    except ImportError:   # pragma: no cover — partial install
        return
    if not obs_trace.enabled():
        return
    obs_metrics.observe("kernel.detect_s", elapsed, provider=provider)
    obs_trace.event("kernel.resolved", provider=provider, ok=ok,
                    detail="" if ok else _provider_errors.get(provider, ""))


def set_multinomial_backend(backend: Optional[str]) -> None:
    """Process-wide backend override (above env, below explicit arguments).

    ``None`` clears the override, restoring env/auto resolution.
    """
    global _configured
    if backend is not None and backend not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown multinomial backend {backend!r}; choose from "
            f"{BACKEND_CHOICES}")
    _configured = backend


def resolve_multinomial_backend(backend: Optional[str] = None) -> KernelInfo:
    """Resolve a backend request to the kernel that will actually run.

    Precedence: ``backend`` argument > :func:`set_multinomial_backend` >
    ``$REPRO_MULTINOMIAL_KERNEL`` > ``auto``.  Unavailable compiled
    providers degrade to NumPy with one :class:`MultinomialKernelWarning`
    per requested mode per process.
    """
    requested = (backend or _configured or os.environ.get(ENV_VAR) or "auto")
    requested = requested.strip().lower()
    if requested not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown multinomial backend {requested!r} "
            f"(from {ENV_VAR}?); choose from {BACKEND_CHOICES}")
    if requested == "numpy":
        return KernelInfo(requested, "numpy", "numpy")
    for name in _DETECTION_ORDER[requested]:
        if _get_provider(name) is not None:
            return KernelInfo(requested, "compiled", name)
    detail = "; ".join(
        f"{n}: {_provider_errors.get(n, 'unavailable')}"
        for n in _DETECTION_ORDER[requested])
    if requested not in _warned:
        _warned.add(requested)
        warnings.warn(
            f"multinomial kernel {requested!r} has no working compiled "
            f"provider ({detail}); falling back to the NumPy backend. "
            f"Pin {ENV_VAR}=numpy to silence this.",
            MultinomialKernelWarning, stacklevel=3)
    return KernelInfo(requested, "numpy", "numpy", detail=detail)


def multinomial_backend_info(backend: Optional[str] = None) -> KernelInfo:
    """The kernel the current configuration resolves to (alias with a
    discoverable name)."""
    return resolve_multinomial_backend(backend)


def multinomial_kernel_id(backend: Optional[str] = None) -> str:
    """Provenance string of the resolved kernel (``numpy`` / ``compiled:*``)."""
    return resolve_multinomial_backend(backend).kernel_id


def use_compiled(backend: Optional[str] = None) -> bool:
    """True iff the resolved backend is a compiled provider."""
    return resolve_multinomial_backend(backend).resolved == "compiled"


def _reset_for_testing() -> None:
    """Clear detection caches and warnings (test helper, not public API)."""
    global _configured
    with _lock:
        _providers.clear()
        _provider_errors.clear()
    _warned.clear()
    _configured = None


# ---------------------------------------------------------------------- #
# RNG bridging
# ---------------------------------------------------------------------- #
def _draw_seed(rng: np.random.Generator) -> int:
    """One 64-bit seed from the caller's Generator: the whole compiled call
    consumes exactly one draw of the NumPy stream, whatever its size."""
    return int(rng.integers(0, np.iinfo(np.uint64).max, dtype=np.uint64,
                            endpoint=True))


def _prep(counts: np.ndarray, dtype=np.int64) -> np.ndarray:
    return np.ascontiguousarray(counts, dtype=dtype)


# ---------------------------------------------------------------------- #
# sampling operations
# ---------------------------------------------------------------------- #
def sample_flows(counts: np.ndarray, pvals: np.ndarray,
                 rng: np.random.Generator,
                 backend: Optional[str] = None) -> np.ndarray:
    """Row-wise multinomial flows: ``out[i] ~ Multinomial(counts[i], pvals[i])``.

    ``counts`` is ``(N,)``, ``pvals`` is ``(N, m)``; rows with zero count
    cost nothing on the compiled backend.  On the numpy backend this is
    verbatim ``rng.multinomial(counts, pvals)``.
    """
    DRAW_STATS["calls"] += 1
    DRAW_STATS["rows"] += int(np.asarray(pvals).shape[0])
    info = resolve_multinomial_backend(backend)
    if info.resolved == "numpy":
        return rng.multinomial(counts, pvals).astype(np.int64, copy=False)
    provider = _providers[info.provider]
    return provider.sample_flows(_prep(counts), _prep(pvals, np.float64),
                                 _draw_seed(rng))


def sample_flows_batch(counts: np.ndarray, Q: np.ndarray,
                       rng: np.random.Generator,
                       backend: Optional[str] = None) -> np.ndarray:
    """Batched flow tensor: ``(R, m)`` counts through ``(R, m, m)`` outcome
    matrices → ``(R, m, m)`` flows, ``out[r, a] ~ Multinomial(counts[r, a],
    Q[r, a])``."""
    counts = np.asarray(counts)
    Q = np.asarray(Q)
    R, m = counts.shape
    flat = sample_flows(counts.reshape(R * m), Q.reshape(R * m, m), rng,
                        backend=backend)
    return flat.reshape(R, m, m)


def scatter_column_sums(counts: np.ndarray, Q: np.ndarray,
                        rng: np.random.Generator,
                        backend: Optional[str] = None) -> np.ndarray:
    """Column sums of one run's flows: the new occupancy after a scatter.

    The numpy backend reproduces the pre-seam engine bit stream exactly
    (``rng.multinomial(counts, Q)`` + sum); the compiled backend accumulates
    the sums in C without materializing the flow matrix.
    """
    DRAW_STATS["calls"] += 1
    DRAW_STATS["rows"] += int(np.asarray(counts).shape[0])
    info = resolve_multinomial_backend(backend)
    if info.resolved == "numpy":
        flows = rng.multinomial(counts, Q)
        return flows.sum(axis=0, dtype=np.int64)
    provider = _providers[info.provider]
    m = Q.shape[-1]
    out = provider.scatter_sums(_prep(counts), _prep(Q, np.float64), 1, m,
                                _draw_seed(rng))
    return out[0]


def scatter_column_sums_batch(counts: np.ndarray, Q: np.ndarray,
                              rng: np.random.Generator,
                              backend: Optional[str] = None) -> np.ndarray:
    """Batched scatter column sums: ``(R, m)`` counts through ``(R, m, m)``.

    The numpy path is verbatim the pre-seam ``_scatter_counts_batch`` —
    including its draw-only-occupied-pairs filtering — so seeded numpy
    results are bit-for-bit unchanged.  The compiled path skips zero rows
    inline in C.
    """
    DRAW_STATS["calls"] += 1
    DRAW_STATS["rows"] += int(np.asarray(counts).size)
    info = resolve_multinomial_backend(backend)
    R, m = counts.shape
    if info.resolved == "numpy":
        nz_run, nz_bin = np.nonzero(counts > 0)
        if nz_run.shape[0] >= R * m:
            flows = rng.multinomial(counts.reshape(R * m), Q.reshape(R * m, m))
            return flows.reshape(R, m, m).sum(axis=1, dtype=np.int64)
        # empty bins scatter nothing: draw only the occupied (run, bin) pairs
        # and segment-sum the flows back per run (nz_run is sorted row-major,
        # so each run's pairs are contiguous)
        out = np.zeros((R, m), dtype=np.int64)
        if nz_run.shape[0] == 0:
            return out
        flows = rng.multinomial(counts[nz_run, nz_bin], Q[nz_run, nz_bin])
        starts = np.flatnonzero(np.r_[True, np.diff(nz_run) > 0])
        out[nz_run[starts]] = np.add.reduceat(flows, starts, axis=0)
        return out
    provider = _providers[info.provider]
    flat_counts = _prep(counts).reshape(R * m)
    flat_Q = _prep(Q, np.float64).reshape(R * m, m)
    return provider.scatter_sums(flat_counts, flat_Q, R, m, _draw_seed(rng))


def sample_scatter_banded(counts: np.ndarray, lo: np.ndarray, hi: np.ndarray,
                          diag: np.ndarray, rng: np.random.Generator,
                          backend: Optional[str] = None) -> np.ndarray:
    """Scatter through a banded outcome matrix with O(m) draws per run.

    ``counts`` is ``(R, m)``; ``lo``/``hi``/``diag`` are the band profiles
    (``(m,)`` or ``(R, m)``), defining ``Q[a, b] = lo[b]`` below the
    diagonal, ``hi[b]`` above and ``diag[a]`` on it, up to per-row
    normalization (which cancels out of every sampled ratio).  Returns the
    new ``(R, m)`` occupancy — the flow tensor is never formed.  Exact in
    law; see ``_mnk.c`` for the pooled-hazard-walk argument.
    """
    counts = np.asarray(counts, dtype=np.int64)
    R, m = counts.shape
    DRAW_STATS["calls"] += 1
    DRAW_STATS["rows"] += int(counts.size)
    lo = np.ascontiguousarray(np.broadcast_to(lo, (R, m)), dtype=np.float64)
    hi = np.ascontiguousarray(np.broadcast_to(hi, (R, m)), dtype=np.float64)
    diag = np.ascontiguousarray(np.broadcast_to(diag, (R, m)), dtype=np.float64)
    info = resolve_multinomial_backend(backend)
    if info.resolved == "numpy":
        return _banded_numpy(counts, lo, hi, diag, rng)
    provider = _providers[info.provider]
    return provider.sample_banded(_prep(counts), lo, hi, diag, _draw_seed(rng))


def _banded_numpy(counts: np.ndarray, lo: np.ndarray, hi: np.ndarray,
                  diag: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """NumPy reference of the banded pooled sampler (vectorized over runs).

    Same law as the C/numba implementations (not the same bit stream); the
    engines only route banded scatters to compiled backends, so this exists
    as the independently-written cross-check the property tests compare
    against.
    """
    R, m = counts.shape
    loc = np.clip(lo, 0.0, None)
    hic = np.clip(hi, 0.0, None)
    dc = np.clip(diag, 0.0, None)
    Lo = np.cumsum(loc, axis=1)
    Hi = np.cumsum(hic[:, ::-1], axis=1)[:, ::-1]
    zeros = np.zeros((R, 1))
    wB = np.concatenate([zeros, Lo[:, :-1]], axis=1)
    wA = np.concatenate([Hi[:, 1:], zeros], axis=1)
    s = wB + dc + wA

    pB = np.divide(wB, s, out=np.zeros_like(s), where=s > 0)
    below = rng.binomial(counts, pB)
    rest = counts - below
    dA = dc + wA
    pA = np.divide(wA, dA, out=np.zeros_like(dA), where=dA > 0)
    above = rng.binomial(rest, pA)
    out = (rest - above).astype(np.int64)

    pending = np.zeros(R, dtype=np.int64)
    for b in range(m - 2, -1, -1):
        pending += below[:, b + 1]
        hz = np.divide(loc[:, b], Lo[:, b],
                       out=np.ones(R), where=Lo[:, b] > 0)
        land = rng.binomial(pending, np.clip(hz, 0.0, 1.0))
        out[:, b] += land
        pending -= land
    pending = np.zeros(R, dtype=np.int64)
    for b in range(1, m):
        pending += above[:, b - 1]
        hz = np.divide(hic[:, b], Hi[:, b],
                       out=np.ones(R), where=Hi[:, b] > 0)
        land = rng.binomial(pending, np.clip(hz, 0.0, 1.0))
        out[:, b] += land
        pending -= land
    return out
