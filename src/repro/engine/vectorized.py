"""Vectorized single-run simulation engine.

This is the hot path of the library: one synchronous round of the protocol is
executed as a handful of NumPy array operations (draw an ``(n, k)`` contact
matrix, gather values, apply the rule's ufunc kernel, optionally apply the
adversary's writes).  No Python-level loop over processes exists anywhere in
this module — following the performance guides, the only loop is over rounds.

The entry point is :func:`simulate`, which produces a
:class:`~repro.engine.run.SimulationResult` with configurable stopping rules:

* stop at exact consensus (useful without an adversary — consensus is a
  fixed point of every value-preserving rule);
* stop once the almost-stable criterion has held for a trailing window of
  rounds (useful with an adversary, where exact consensus may never happen);
* or always run the full ``max_rounds`` horizon (``run_to_horizon=True``),
  which experiments use when they need complete trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.adversary.base import Adversary, AdversaryTiming, NullAdversary
from repro.core.consensus import (
    AlmostStableCriterion,
    ConsensusStatus,
    consensus_value,
    is_consensus,
)
from repro.core.median_rule import MedianRule
from repro.core.metrics import minority_count
from repro.core.rules import Rule
from repro.core.state import Configuration
from repro.engine.rng import make_rng
from repro.engine.run import SimulationResult
from repro.engine.trajectory import RecordLevel, TrajectoryRecorder

__all__ = ["simulate", "default_max_rounds", "EngineConfig"]


def default_max_rounds(n: int, factor: float = 40.0, floor: int = 200) -> int:
    """A generous default horizon of ``max(floor, factor · log2 n)`` rounds.

    The paper's bounds are O(log n)–O(log m log log n + log n); a horizon of
    ~40·log2(n) rounds leaves ample slack while keeping worst-case sweeps
    bounded.
    """
    if n <= 1:
        return floor
    return max(floor, int(np.ceil(factor * np.log2(n))))


@dataclass
class EngineConfig:
    """Knobs of the vectorized engine (all optional).

    Attributes
    ----------
    max_rounds:
        Horizon; ``None`` selects :func:`default_max_rounds`.
    record:
        Trajectory record level.
    stop_at_consensus:
        Stop as soon as all values are equal.
    stop_when_stable:
        Stop once the almost-stable criterion has held for ``criterion.window``
        consecutive rounds (only meaningful when a criterion is supplied).
    run_to_horizon:
        Ignore both stop rules and always execute ``max_rounds`` rounds.
    """

    max_rounds: Optional[int] = None
    record: RecordLevel = RecordLevel.METRICS
    stop_at_consensus: bool = True
    stop_when_stable: bool = True
    run_to_horizon: bool = False


def _almost_stable_status(final_values: np.ndarray,
                          first_stable_round: Optional[int]) -> ConsensusStatus:
    """Build the almost-stable ConsensusStatus from run bookkeeping.

    ``first_stable_round`` is the start of the trailing streak of rounds
    satisfying the tolerance (``None`` if the streak is broken); the winning
    value is the plurality value of the final configuration.
    """
    if first_stable_round is None:
        return ConsensusStatus(reached=False, round=None, value=None)
    uniq, counts = np.unique(final_values, return_counts=True)
    value = int(uniq[int(np.argmax(counts))])
    return ConsensusStatus(reached=True, round=first_stable_round, value=value)


def simulate(
    initial: Configuration | np.ndarray,
    rule: Rule | None = None,
    adversary: Adversary | None = None,
    *,
    seed: Optional[int | np.random.Generator] = None,
    max_rounds: Optional[int] = None,
    criterion: Optional[AlmostStableCriterion] = None,
    record: RecordLevel = RecordLevel.METRICS,
    stop_at_consensus: bool = True,
    stop_when_stable: bool = True,
    run_to_horizon: bool = False,
    admissible_values: Optional[np.ndarray] = None,
) -> SimulationResult:
    """Simulate one run of a consensus rule, optionally under an adversary.

    Parameters
    ----------
    initial:
        Initial configuration (or raw value vector).
    rule:
        Update rule; defaults to the paper's :class:`MedianRule`.
    adversary:
        T-bounded adversary; defaults to :class:`NullAdversary`.
    seed:
        Integer seed or an existing ``numpy.random.Generator``.
    max_rounds:
        Round horizon; ``None`` selects :func:`default_max_rounds`.
    criterion:
        Almost-stable criterion.  If ``None`` one is derived from the
        adversary: tolerance ``4·T`` (a concrete stand-in for the paper's
        ``O(T)``) and a stability window of 10 rounds; for a null adversary
        the criterion degenerates to exact consensus.
    record, stop_at_consensus, stop_when_stable, run_to_horizon:
        See :class:`EngineConfig`.
    admissible_values:
        The set of initial values the adversary may write.  Defaults to the
        support of ``initial`` (the paper's ``{v_1, ..., v_n}``).

    Returns
    -------
    SimulationResult
    """
    cfg = initial if isinstance(initial, Configuration) else Configuration.from_values(initial)
    rule = rule or MedianRule()
    adversary = adversary or NullAdversary()
    rng = make_rng(seed)
    horizon = max_rounds if max_rounds is not None else default_max_rounds(cfg.n)
    if horizon < 0:
        raise ValueError("max_rounds must be non-negative")

    if criterion is None:
        tolerance = 4 * adversary.budget
        window = 10 if adversary.budget > 0 else 1
        criterion = AlmostStableCriterion(tolerance=tolerance, window=window)

    admissible = np.asarray(
        cfg.support if admissible_values is None else admissible_values, dtype=np.int64
    )

    adversary.reset()
    values = cfg.copy_values()
    n = values.shape[0]

    recorder = TrajectoryRecorder(level=record)
    recorder.record(values, 0)

    consensus_status = ConsensusStatus(reached=False, round=None, value=None)
    if is_consensus(values):
        consensus_status = ConsensusStatus(reached=True, round=0, value=int(values[0]))

    # bookkeeping for almost-stable detection: length of the current trailing
    # streak of rounds satisfying the tolerance, and the first round of the
    # streak that eventually persists to the end of the run.
    streak = 1 if minority_count(values) <= criterion.tolerance else 0
    first_stable_round: Optional[int] = 0 if streak else None

    rounds_executed = 0
    for t in range(1, horizon + 1):
        # --- adversary acting at the beginning of the round ---------------
        if adversary.budget > 0 and adversary.timing is AdversaryTiming.BEFORE_SAMPLING:
            values = adversary.corrupt(values, t, admissible, rng)

        # --- the protocol round -------------------------------------------
        samples = rule.sample_contacts(n, rng)
        new_values = rule.apply_vectorized(values, samples, rng)

        # --- adversary acting after the random choices (Section 3 variant) -
        if adversary.budget > 0 and adversary.timing is AdversaryTiming.AFTER_SAMPLING:
            new_values = adversary.corrupt(new_values, t, admissible, rng)

        values = new_values
        rounds_executed = t
        recorder.record(values, t)

        # --- consensus bookkeeping -----------------------------------------
        if not consensus_status.reached and is_consensus(values):
            consensus_status = ConsensusStatus(reached=True, round=t, value=int(values[0]))

        if minority_count(values) <= criterion.tolerance:
            if streak == 0:
                first_stable_round = t
            streak += 1
        else:
            streak = 0
            first_stable_round = None

        # --- stop rules ------------------------------------------------------
        if run_to_horizon:
            continue
        if stop_at_consensus and consensus_status.reached and adversary.budget == 0:
            break
        if (stop_when_stable and adversary.budget > 0 and streak >= criterion.window):
            break

    almost_status = _almost_stable_status(values, first_stable_round)
    if almost_status.reached and streak < criterion.window:
        # The trailing streak is too short to certify stability.
        almost_status = ConsensusStatus(reached=False, round=None, value=None)

    final = Configuration.from_values(values)
    return SimulationResult(
        initial=cfg,
        final=final,
        rounds_executed=rounds_executed,
        consensus=consensus_status,
        almost_stable=almost_status,
        trajectory=recorder.finish(),
        rule_name=rule.name,
        adversary_name=type(adversary).__name__,
        criterion=criterion,
        meta={
            "adversary_budget": adversary.budget,
            "horizon": horizon,
            "budget_ledger_total": adversary.ledger.total,
            "budget_ledger_ok": adversary.ledger.verify(),
        },
    )
