"""Initial-assignment (workload) generators.

The paper's experiments (its theorem statements) are parameterized by the
initial distribution of balls into bins.  Each generator here produces either
a fixed :class:`~repro.core.state.Configuration` or a per-run factory
``rng -> Configuration``; both forms are accepted by
:func:`repro.engine.batch.run_batch`.

Registered workloads (``make_workload(name, **params)``):

``all-distinct``
    The all-one assignment — every process holds its own value (m = n).  The
    finest and therefore worst-case initial state (Lemma 17); used by the
    Theorem 1 experiment.
``two-bins``
    A two-value split with a given minority size (or a perfectly balanced
    split by default) — Section 3 / Theorem 10.
``uniform-random``
    Every process draws one of m values uniformly at random — the average
    case of Section 5 / Theorems 4, 21.
``blocks``
    m equal (or near-equal) contiguous blocks of processes per value — the
    worst-case m-value state used by the Theorem 3 experiment.
``zipf``
    Values drawn from a Zipf-like distribution over m values — a skewed
    workload exercising the "one bin already dominates" regime (not from the
    paper; useful as an example scenario).
``planted-majority``
    One value planted on a ``bias`` fraction of processes, the rest uniform
    over the remaining m−1 values; models the "replicated state with a
    mostly-correct copy" application from the introduction.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.core.occupancy_state import OccupancyState
from repro.core.state import Configuration

__all__ = [
    "WorkloadFactory",
    "implied_support_width",
    "all_distinct_workload",
    "two_bins_workload",
    "uniform_random_workload",
    "blocks_workload",
    "zipf_workload",
    "planted_majority_workload",
    "WORKLOAD_REGISTRY",
    "make_workload",
    "make_occupancy_workload",
    "make_workload_for_engine",
]

WorkloadFactory = Union[Configuration, Callable[[np.random.Generator], Configuration]]


def implied_support_width(name: str, params: Dict[str, object]) -> int:
    """Number of distinct initial values a workload implies (0 if unknown).

    The single source for the ``m`` a cell's engine-selection logic reasons
    about: explicit ``m`` parameters win, ``all-distinct`` implies m = n,
    ``two-bins`` implies 2 (see ``ExperimentConfig.m`` and
    ``repro.experiments.runner.resolve_cell_engine``).
    """
    if "m" in params:
        return int(params["m"])
    if name == "all-distinct":
        return int(params.get("n", 0))
    if name == "two-bins":
        return 2
    return 0

OccupancyWorkloadFactory = Union[
    OccupancyState, Callable[[np.random.Generator], OccupancyState]
]


def all_distinct_workload(n: int) -> Configuration:
    """Every process holds its own distinct value (the all-one assignment)."""
    return Configuration.all_distinct(n)


def two_bins_workload(n: int, minority: Optional[int] = None,
                      low: int = 0, high: int = 1) -> Configuration:
    """Two values; ``minority`` processes hold ``low`` (default: balanced split)."""
    if minority is None:
        minority = n // 2
    return Configuration.two_bins(n, minority=minority, low=low, high=high)


def uniform_random_workload(n: int, m: int) -> Callable[[np.random.Generator], Configuration]:
    """Average case: each process draws one of ``m`` values uniformly (per-run factory)."""
    if m <= 0:
        raise ValueError("m must be positive")

    def factory(rng: np.random.Generator) -> Configuration:
        return Configuration.uniform_random(n, m, rng)

    return factory


def blocks_workload(n: int, m: int) -> Configuration:
    """``m`` near-equal blocks: value ``v`` is held by ~n/m consecutive processes.

    This is the natural deterministic worst case for m values: all bins start
    with (almost) the same load, so no value has an initial head start.
    """
    if m <= 0 or m > n:
        raise ValueError("m must lie in [1, n]")
    values = (np.arange(n, dtype=np.int64) * m) // n
    return Configuration.from_values(values)


def zipf_workload(n: int, m: int, exponent: float = 1.2
                  ) -> Callable[[np.random.Generator], Configuration]:
    """Values drawn from a truncated Zipf(exponent) distribution over ``m`` values."""
    if m <= 0:
        raise ValueError("m must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    weights = 1.0 / np.power(np.arange(1, m + 1, dtype=np.float64), exponent)
    weights /= weights.sum()

    def factory(rng: np.random.Generator) -> Configuration:
        picks = rng.choice(m, size=n, p=weights)
        return Configuration.from_values(picks.astype(np.int64))

    return factory


def planted_majority_workload(n: int, m: int, bias: float = 0.4, planted_value: int = 0
                              ) -> Callable[[np.random.Generator], Configuration]:
    """A ``bias`` fraction of processes hold ``planted_value``; the rest are uniform.

    Models the replicated-state-consolidation application: most replicas hold
    the correct state, a minority are stale/divergent.
    """
    if not 0.0 <= bias <= 1.0:
        raise ValueError("bias must lie in [0, 1]")
    if m <= 1:
        raise ValueError("m must be at least 2")

    def factory(rng: np.random.Generator) -> Configuration:
        values = rng.integers(1, m, size=n).astype(np.int64)
        planted = rng.random(n) < bias
        values[planted] = planted_value
        return Configuration.from_values(values)

    return factory


WORKLOAD_REGISTRY: Dict[str, Callable[..., WorkloadFactory]] = {
    "all-distinct": all_distinct_workload,
    "two-bins": two_bins_workload,
    "uniform-random": uniform_random_workload,
    "blocks": blocks_workload,
    "zipf": zipf_workload,
    "planted-majority": planted_majority_workload,
}


def make_workload(name: str, **params) -> WorkloadFactory:
    """Build a workload (fixed configuration or per-run factory) by registry name."""
    if name not in WORKLOAD_REGISTRY:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOAD_REGISTRY)}")
    return WORKLOAD_REGISTRY[name](**params)


# ---------------------------------------------------------------------- #
# occupancy-native workload construction (O(m) memory, n up to 10⁹)
# ---------------------------------------------------------------------- #
def _blocks_counts(n: int, m: int) -> np.ndarray:
    # value v is held by exactly the i with (i*m)//n == v, i.e. the integer
    # points of [ceil(v*n/m), ceil((v+1)*n/m)) — identical to blocks_workload
    edges = -(-np.arange(m + 1, dtype=np.int64) * n // m)  # ceil(v*n/m)
    return np.diff(edges)


#: Accepted parameters per workload, mirroring the per-process generators'
#: signatures so both construction paths reject the same typos.
_OCCUPANCY_WORKLOAD_PARAMS: Dict[str, frozenset] = {
    "all-distinct": frozenset({"n"}),
    "two-bins": frozenset({"n", "minority", "low", "high"}),
    "blocks": frozenset({"n", "m"}),
    "uniform-random": frozenset({"n", "m"}),
    "zipf": frozenset({"n", "m", "exponent"}),
    "planted-majority": frozenset({"n", "m", "bias", "planted_value"}),
}


def make_occupancy_workload(name: str, **params) -> OccupancyWorkloadFactory:
    """Build the same initial distributions directly as occupancy vectors.

    Produces either a fixed :class:`~repro.core.occupancy_state.OccupancyState`
    or a per-run factory ``rng -> OccupancyState`` with **identical law** to
    ``make_workload(name, ...)`` followed by counting, but O(m) memory instead
    of O(n) — this is what lets the occupancy engine start an n = 10⁹ run
    without ever materializing a value array.  Random workloads draw the
    counts from the induced multinomial/binomial distributions.
    """
    if name not in WORKLOAD_REGISTRY:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOAD_REGISTRY)}")
    allowed = _OCCUPANCY_WORKLOAD_PARAMS[name]
    unexpected = set(params) - allowed
    if unexpected:
        raise TypeError(
            f"workload {name!r} got unexpected parameters {sorted(unexpected)}; "
            f"accepted: {sorted(allowed)}"
        )

    if name == "all-distinct":
        n = int(params["n"])
        if n <= 0:
            raise ValueError("n must be positive")
        return OccupancyState(support=np.arange(n, dtype=np.int64),
                              counts=np.ones(n, dtype=np.int64))

    if name == "two-bins":
        n = int(params["n"])
        minority = int(params.get("minority", n // 2))
        low = int(params.get("low", 0))
        high = int(params.get("high", 1))
        if not 0 <= minority <= n:
            raise ValueError("minority must lie in [0, n]")
        if low >= high:
            raise ValueError("two-bins occupancy needs low < high")
        return OccupancyState(support=np.array([low, high], dtype=np.int64),
                              counts=np.array([minority, n - minority], dtype=np.int64))

    if name == "blocks":
        n, m = int(params["n"]), int(params["m"])
        if m <= 0 or m > n:
            raise ValueError("m must lie in [1, n]")
        return OccupancyState(support=np.arange(m, dtype=np.int64),
                              counts=_blocks_counts(n, m))

    if name == "uniform-random":
        n, m = int(params["n"]), int(params["m"])
        if m <= 0 or n <= 0:
            raise ValueError("n and m must be positive")

        def uniform_factory(rng: np.random.Generator) -> OccupancyState:
            counts = rng.multinomial(n, np.full(m, 1.0 / m))
            return OccupancyState(support=np.arange(m, dtype=np.int64), counts=counts)

        return uniform_factory

    if name == "zipf":
        n, m = int(params["n"]), int(params["m"])
        exponent = float(params.get("exponent", 1.2))
        if m <= 0 or exponent <= 0:
            raise ValueError("m and exponent must be positive")
        weights = 1.0 / np.power(np.arange(1, m + 1, dtype=np.float64), exponent)
        weights /= weights.sum()

        def zipf_factory(rng: np.random.Generator) -> OccupancyState:
            counts = rng.multinomial(n, weights)
            return OccupancyState(support=np.arange(m, dtype=np.int64), counts=counts)

        return zipf_factory

    if name == "planted-majority":
        n, m = int(params["n"]), int(params["m"])
        bias = float(params.get("bias", 0.4))
        planted_value = int(params.get("planted_value", 0))
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must lie in [0, 1]")
        if m <= 1:
            raise ValueError("m must be at least 2")

        def planted_factory(rng: np.random.Generator) -> OccupancyState:
            planted = int(rng.binomial(n, bias))
            rest = rng.multinomial(n - planted, np.full(m - 1, 1.0 / (m - 1)))
            loads: Dict[int, int] = {v: int(c) for v, c in zip(range(1, m), rest)}
            loads[planted_value] = loads.get(planted_value, 0) + planted
            return OccupancyState.from_loads(loads)

        return planted_factory

    raise KeyError(f"workload {name!r} has no occupancy-native form")


def make_workload_for_engine(name: str, engine: str, **params
                             ) -> Union[WorkloadFactory, OccupancyWorkloadFactory]:
    """Build the initial state in the representation the engine simulates in.

    ``"occupancy"`` and ``"occupancy-fused"`` get O(m) count vectors (so
    n = 10⁹ cells never materialize a value array); every other engine gets
    the per-process form.
    """
    if engine in ("occupancy", "occupancy-fused"):
        return make_occupancy_workload(name, **params)
    return make_workload(name, **params)
