"""Initial-assignment (workload) generators.

The paper's experiments (its theorem statements) are parameterized by the
initial distribution of balls into bins.  Each generator here produces either
a fixed :class:`~repro.core.state.Configuration` or a per-run factory
``rng -> Configuration``; both forms are accepted by
:func:`repro.engine.batch.run_batch`.

Registered workloads (``make_workload(name, **params)``):

``all-distinct``
    The all-one assignment — every process holds its own value (m = n).  The
    finest and therefore worst-case initial state (Lemma 17); used by the
    Theorem 1 experiment.
``two-bins``
    A two-value split with a given minority size (or a perfectly balanced
    split by default) — Section 3 / Theorem 10.
``uniform-random``
    Every process draws one of m values uniformly at random — the average
    case of Section 5 / Theorems 4, 21.
``blocks``
    m equal (or near-equal) contiguous blocks of processes per value — the
    worst-case m-value state used by the Theorem 3 experiment.
``zipf``
    Values drawn from a Zipf-like distribution over m values — a skewed
    workload exercising the "one bin already dominates" regime (not from the
    paper; useful as an example scenario).
``planted-majority``
    One value planted on a ``bias`` fraction of processes, the rest uniform
    over the remaining m−1 values; models the "replicated state with a
    mostly-correct copy" application from the introduction.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.core.state import Configuration

__all__ = [
    "WorkloadFactory",
    "all_distinct_workload",
    "two_bins_workload",
    "uniform_random_workload",
    "blocks_workload",
    "zipf_workload",
    "planted_majority_workload",
    "WORKLOAD_REGISTRY",
    "make_workload",
]

WorkloadFactory = Union[Configuration, Callable[[np.random.Generator], Configuration]]


def all_distinct_workload(n: int) -> Configuration:
    """Every process holds its own distinct value (the all-one assignment)."""
    return Configuration.all_distinct(n)


def two_bins_workload(n: int, minority: Optional[int] = None,
                      low: int = 0, high: int = 1) -> Configuration:
    """Two values; ``minority`` processes hold ``low`` (default: balanced split)."""
    if minority is None:
        minority = n // 2
    return Configuration.two_bins(n, minority=minority, low=low, high=high)


def uniform_random_workload(n: int, m: int) -> Callable[[np.random.Generator], Configuration]:
    """Average case: each process draws one of ``m`` values uniformly (per-run factory)."""
    if m <= 0:
        raise ValueError("m must be positive")

    def factory(rng: np.random.Generator) -> Configuration:
        return Configuration.uniform_random(n, m, rng)

    return factory


def blocks_workload(n: int, m: int) -> Configuration:
    """``m`` near-equal blocks: value ``v`` is held by ~n/m consecutive processes.

    This is the natural deterministic worst case for m values: all bins start
    with (almost) the same load, so no value has an initial head start.
    """
    if m <= 0 or m > n:
        raise ValueError("m must lie in [1, n]")
    values = (np.arange(n, dtype=np.int64) * m) // n
    return Configuration.from_values(values)


def zipf_workload(n: int, m: int, exponent: float = 1.2
                  ) -> Callable[[np.random.Generator], Configuration]:
    """Values drawn from a truncated Zipf(exponent) distribution over ``m`` values."""
    if m <= 0:
        raise ValueError("m must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    weights = 1.0 / np.power(np.arange(1, m + 1, dtype=np.float64), exponent)
    weights /= weights.sum()

    def factory(rng: np.random.Generator) -> Configuration:
        picks = rng.choice(m, size=n, p=weights)
        return Configuration.from_values(picks.astype(np.int64))

    return factory


def planted_majority_workload(n: int, m: int, bias: float = 0.4, planted_value: int = 0
                              ) -> Callable[[np.random.Generator], Configuration]:
    """A ``bias`` fraction of processes hold ``planted_value``; the rest are uniform.

    Models the replicated-state-consolidation application: most replicas hold
    the correct state, a minority are stale/divergent.
    """
    if not 0.0 <= bias <= 1.0:
        raise ValueError("bias must lie in [0, 1]")
    if m <= 1:
        raise ValueError("m must be at least 2")

    def factory(rng: np.random.Generator) -> Configuration:
        values = rng.integers(1, m, size=n).astype(np.int64)
        planted = rng.random(n) < bias
        values[planted] = planted_value
        return Configuration.from_values(values)

    return factory


WORKLOAD_REGISTRY: Dict[str, Callable[..., WorkloadFactory]] = {
    "all-distinct": all_distinct_workload,
    "two-bins": two_bins_workload,
    "uniform-random": uniform_random_workload,
    "blocks": blocks_workload,
    "zipf": zipf_workload,
    "planted-majority": planted_majority_workload,
}


def make_workload(name: str, **params) -> WorkloadFactory:
    """Build a workload (fixed configuration or per-run factory) by registry name."""
    if name not in WORKLOAD_REGISTRY:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOAD_REGISTRY)}")
    return WORKLOAD_REGISTRY[name](**params)
