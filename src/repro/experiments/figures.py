"""Regeneration of the paper's Figure 1 table and per-theorem data series.

The paper is a theory paper whose only "evaluation artifact" is the Figure 1
summary table of asymptotic bounds; the theorems themselves define the data
series a reproduction must produce (convergence round vs n, vs m, odd vs even
m, with vs without adversary).  This module provides one function per
artifact, each returning an :class:`~repro.experiments.results.ExperimentReport`
plus, where appropriate, the scaling fits that turn raw measurements into the
"grows like ..." statements recorded in EXPERIMENTS.md.

All functions accept a ``scale`` knob so that benchmarks can run them at
laptop-friendly sizes while the CLI can run the full grid, and an optional
``runner`` — any object with a ``run(sweep) -> ExperimentReport`` method,
typically :class:`repro.store.CachedSweepRunner` — so the same figure
functions serve cold recomputation and cache-backed resumable execution
(the CLI wires this up for ``sweep --store DIR``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.analysis.statistics import ScalingFit, compare_predictors, fit_scaling
from repro.experiments.reporting import format_figure1_table, format_report
from repro.experiments.results import ExperimentReport
from repro.experiments.runner import run_sweep
from repro.experiments.sweep import (
    adversary_threshold_sweep,
    figure1_sweep,
    minimum_rule_attack_sweep,
    rule_comparison_sweep,
    theorem1_sweep,
    theorem2_sweep,
    theorem3_sweep,
    theorem4_sweep,
    theorem10_sweep,
)

__all__ = [
    "FigureResult",
    "SweepRunner",
    "FIGURE_REGISTRY",
    "regenerate_from_store",
    "reproduce_figure1",
    "reproduce_theorem1",
    "reproduce_theorem2",
    "reproduce_theorem3",
    "reproduce_theorem4",
    "reproduce_theorem10",
    "reproduce_minimum_rule_attack",
    "reproduce_adversary_threshold",
    "reproduce_rule_comparison",
]


class SweepRunner(Protocol):
    """Anything able to execute a sweep (duck-typed; see module docstring)."""

    def run(self, sweep) -> ExperimentReport: ...


def _execute(sweep, runner: Optional[SweepRunner] = None) -> ExperimentReport:
    """Run a sweep through ``runner`` (cache-aware) or plain :func:`run_sweep`."""
    if runner is None:
        return run_sweep(sweep)
    return runner.run(sweep)


@dataclass
class FigureResult:
    """An experiment report plus its derived scaling fits and rendered table."""

    report: ExperimentReport
    fits: List[ScalingFit]
    table: str

    def best_fit(self) -> Optional[ScalingFit]:
        return self.fits[0] if self.fits else None


def _fits_from_report(report: ExperimentReport,
                      candidates: Sequence[str]) -> List[ScalingFit]:
    ns = [c.n for c in report.cells]
    ms = [max(c.m, 2) for c in report.cells]
    rounds = [c.mean_rounds for c in report.cells]
    try:
        return compare_predictors(ns, ms, rounds, candidates)
    except ValueError:
        return []


def reproduce_figure1(scale: float = 1.0, num_runs: int = 10, seed: int = 808,
                      engine: str = "occupancy-fused",
                      runner: Optional[SweepRunner] = None) -> FigureResult:
    """FIG1: every cell of the paper's Figure 1 summary table at one n."""
    n = max(128, int(1024 * scale))
    m_many = 32 if n >= 512 else 8
    sweep = figure1_sweep(n=n, m_many=m_many, num_runs=num_runs, seed=seed,
                          engine=engine)
    report = _execute(sweep, runner)
    table = format_figure1_table(report)
    return FigureResult(report=report, fits=[], table=table)


def reproduce_theorem1(scale: float = 1.0, num_runs: int = 15, seed: int = 101,
                       engine: str = "occupancy-fused",
                       runner: Optional[SweepRunner] = None) -> FigureResult:
    """THM1: O(log n) consensus, all-distinct start, no adversary."""
    base = (64, 128, 256, 512, 1024, 2048)
    ns = tuple(max(16, int(n * scale)) for n in base)
    report = _execute(theorem1_sweep(ns=ns, num_runs=num_runs, seed=seed,
                                     engine=engine), runner)
    fits = _fits_from_report(report, ["log_n", "sqrt_n", "linear_n"])
    return FigureResult(report=report, fits=fits, table=format_report(report))


def reproduce_theorem2(scale: float = 1.0, num_runs: int = 8, seed: int = 202,
                       engine: str = "vectorized",
                       runner: Optional[SweepRunner] = None) -> FigureResult:
    """THM2: O(log n) almost-stable consensus, constant m, sqrt(n) adversary."""
    base = (256, 1024, 4096)
    ns = tuple(max(64, int(n * scale)) for n in base)
    report = _execute(theorem2_sweep(ns=ns, num_runs=num_runs, seed=seed,
                                     engine=engine), runner)
    fits = _fits_from_report(report, ["log_n", "sqrt_n", "linear_n"])
    return FigureResult(report=report, fits=fits, table=format_report(report))


def reproduce_theorem3(scale: float = 1.0, num_runs: int = 8, seed: int = 303,
                       engine: str = "vectorized",
                       runner: Optional[SweepRunner] = None) -> FigureResult:
    """THM3: O(log m log log n + log n), m sweep and n sweep, sqrt(n) adversary."""
    n = max(256, int(2048 * scale))
    ns = tuple(max(128, int(x * scale)) for x in (256, 512, 1024, 2048, 4096))
    ms = (2, 4, 8, 16, 32, 64)
    report = _execute(theorem3_sweep(n=n, ms=ms, ns=ns, num_runs=num_runs, seed=seed,
                                     engine=engine), runner)
    fits = _fits_from_report(report, ["log_m_loglog_n_plus_log_n", "log_n", "linear_n"])
    return FigureResult(report=report, fits=fits, table=format_report(report))


def reproduce_theorem4(scale: float = 1.0, num_runs: int = 8, seed: int = 404,
                       with_adversary: bool = False,
                       engine: str = "vectorized",
                       runner: Optional[SweepRunner] = None) -> FigureResult:
    """THM4/21/COR22: average case, odd vs even m."""
    n = max(256, int(4096 * scale))
    ms = (3, 4, 5, 8, 9, 16, 17, 32, 33)
    report = _execute(theorem4_sweep(n=n, ms=ms, with_adversary=with_adversary,
                                      num_runs=num_runs, seed=seed, engine=engine),
                      runner)
    # fit odd and even cells separately (they have different predicted laws)
    odd_cells = [c for c in report.cells if c.m % 2 == 1]
    even_cells = [c for c in report.cells if c.m % 2 == 0]
    fits: List[ScalingFit] = []
    if len(odd_cells) >= 2:
        fits += compare_predictors([c.n for c in odd_cells], [c.m for c in odd_cells],
                                   [c.mean_rounds for c in odd_cells],
                                   ["log_m_plus_loglog_n", "log_n"])
    if len(even_cells) >= 2:
        fits += compare_predictors([c.n for c in even_cells], [c.m for c in even_cells],
                                   [c.mean_rounds for c in even_cells],
                                   ["log_n", "log_m_plus_loglog_n"])
    return FigureResult(report=report, fits=fits, table=format_report(report))


def reproduce_theorem10(scale: float = 1.0, num_runs: int = 8, seed: int = 505,
                        engine: str = "occupancy-fused",
                        runner: Optional[SweepRunner] = None) -> FigureResult:
    """THM10: two balanced bins, sqrt(n) adversary, O(log n) rounds."""
    base = (256, 1024, 4096, 16384)
    ns = tuple(max(64, int(n * scale)) for n in base)
    report = _execute(theorem10_sweep(ns=ns, num_runs=num_runs, seed=seed,
                                      engine=engine), runner)
    fits = _fits_from_report(report, ["log_n", "sqrt_n", "linear_n"])
    return FigureResult(report=report, fits=fits, table=format_report(report))


def reproduce_minimum_rule_attack(scale: float = 1.0, num_runs: int = 8, seed: int = 606,
                                  engine: str = "vectorized",
                                  runner: Optional[SweepRunner] = None) -> FigureResult:
    """MINRULE: the reviving adversary flips the minimum rule but not the median rule.

    The relevant outcome is not the convergence round but whether a run is
    *stable*: for the minimum rule the late re-introduction of the smallest
    value drags the system away from its apparent agreement (so its
    almost-stable round, if any, is late and its final agreement is on the
    adversary's value); the median rule absorbs the attack.
    """
    n = max(128, int(1024 * scale))
    report = _execute(minimum_rule_attack_sweep(n=n, num_runs=num_runs, seed=seed,
                                                engine=engine), runner)
    return FigureResult(report=report, fits=[], table=format_report(report))


def reproduce_adversary_threshold(scale: float = 1.0, num_runs: int = 6, seed: int = 707,
                                  engine: str = "occupancy-fused",
                                  runner: Optional[SweepRunner] = None) -> FigureResult:
    """ADVBOUND: convergence vs adversary strength T = c·sqrt(n)."""
    n = max(256, int(4096 * scale))
    report = _execute(adversary_threshold_sweep(n=n, num_runs=num_runs, seed=seed,
                                                engine=engine), runner)
    return FigureResult(report=report, fits=[], table=format_report(report))


def reproduce_rule_comparison(scale: float = 1.0, num_runs: int = 6, seed: int = 909,
                              engine: str = "vectorized",
                              runner: Optional[SweepRunner] = None) -> FigureResult:
    """Ablation: median (two choices) vs voter (one choice) vs 3-majority vs minimum."""
    n = max(128, int(1024 * scale))
    report = _execute(rule_comparison_sweep(n=n, num_runs=num_runs, seed=seed,
                                            engine=engine), runner)
    return FigureResult(report=report, fits=[], table=format_report(report))


#: Name → reproduce function for every paper artifact this module can
#: regenerate.  The CLI ``sweep`` subcommand and the store-backed
#: :func:`regenerate_from_store` both dispatch through this registry.
FIGURE_REGISTRY = {
    "theorem1": reproduce_theorem1,
    "theorem2": reproduce_theorem2,
    "theorem3": reproduce_theorem3,
    "theorem4": reproduce_theorem4,
    "theorem10": reproduce_theorem10,
    "figure1": reproduce_figure1,
    "minrule": reproduce_minimum_rule_attack,
    "adversary-threshold": reproduce_adversary_threshold,
    "rule-comparison": reproduce_rule_comparison,
}


def regenerate_from_store(figure: str, store, **kwargs) -> FigureResult:
    """Regenerate a figure/table purely from cached cells — zero simulation.

    ``store`` is a :class:`repro.store.ResultStore` (or its directory); the
    reproduce function runs with an *offline* cached runner, so every cell
    must already be in the store — a miss raises
    :class:`repro.store.StoreMissError` instead of silently recomputing.
    Remaining ``kwargs`` (``scale``, ``num_runs``, ``seed``, ...) must match
    the run that populated the store, since they shape the swept cells.
    """
    from repro.store import CachedSweepRunner, ResultStore

    if figure not in FIGURE_REGISTRY:
        raise KeyError(f"unknown figure {figure!r}; "
                       f"available: {sorted(FIGURE_REGISTRY)}")
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    runner = CachedSweepRunner(store, offline=True)
    return FIGURE_REGISTRY[figure](runner=runner, **kwargs)
