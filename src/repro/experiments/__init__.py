"""Experiment harness: configs, workloads, sweeps, runners, figure reproduction."""

from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.figures import (
    FigureResult,
    reproduce_adversary_threshold,
    reproduce_figure1,
    reproduce_minimum_rule_attack,
    reproduce_rule_comparison,
    reproduce_theorem1,
    reproduce_theorem2,
    reproduce_theorem3,
    reproduce_theorem4,
    reproduce_theorem10,
)
from repro.experiments.reporting import format_figure1_table, format_report, format_table
from repro.experiments.results import CellResult, ExperimentReport
from repro.experiments.runner import run_cell, run_sweep
from repro.experiments.sweep import (
    adversary_threshold_sweep,
    figure1_sweep,
    minimum_rule_attack_sweep,
    rule_comparison_sweep,
    theorem1_sweep,
    theorem2_sweep,
    theorem3_sweep,
    theorem4_sweep,
    theorem10_sweep,
)
from repro.experiments.workloads import WORKLOAD_REGISTRY, make_workload

__all__ = [
    "ExperimentConfig",
    "SweepConfig",
    "CellResult",
    "ExperimentReport",
    "run_cell",
    "run_sweep",
    "make_workload",
    "WORKLOAD_REGISTRY",
    "format_table",
    "format_report",
    "format_figure1_table",
    "FigureResult",
    "reproduce_figure1",
    "reproduce_theorem1",
    "reproduce_theorem2",
    "reproduce_theorem3",
    "reproduce_theorem4",
    "reproduce_theorem10",
    "reproduce_minimum_rule_attack",
    "reproduce_adversary_threshold",
    "reproduce_rule_comparison",
    "theorem1_sweep",
    "theorem2_sweep",
    "theorem3_sweep",
    "theorem4_sweep",
    "theorem10_sweep",
    "figure1_sweep",
    "minimum_rule_attack_sweep",
    "adversary_threshold_sweep",
    "rule_comparison_sweep",
]
