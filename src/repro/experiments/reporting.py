"""Table rendering for experiment reports.

The paper's single table (Figure 1) and the per-theorem result series are
reported as plain-text / markdown tables.  These helpers keep formatting in
one place so benchmarks, the CLI and EXPERIMENTS.md all print the same rows.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.experiments.results import CellResult, ExperimentReport

__all__ = ["format_table", "format_report", "format_figure1_table"]


def format_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None,
                 markdown: bool = True) -> str:
    """Render a list of dict rows as a (markdown) table string."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    header = [str(c) for c in cols]
    body = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(cols))]

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    lines = [fmt_row(header)]
    if markdown:
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(r) for r in body)
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_report(report: ExperimentReport, markdown: bool = True) -> str:
    """Render an :class:`ExperimentReport` as a titled table."""
    rows = [c.flat_row() for c in report.cells]
    title = f"## {report.name}\n\n{report.description}\n\n" if markdown \
        else f"{report.name}\n{report.description}\n\n"
    return title + format_table(rows, markdown=markdown)


def format_figure1_table(report: ExperimentReport) -> str:
    """Render the Figure-1 style 2×3 summary from a figure1 sweep report.

    Rows: worst-case 2 bins / worst-case m bins / average-case m bins; columns:
    with adversary / without adversary.  Each entry is the mean convergence
    round of the corresponding cell(s).
    """
    def mean_for(prefix: str, with_adv: bool) -> str:
        suffix = "/adv" if with_adv else "/noadv"
        picks = [c for c in report.cells if c.config.name.startswith(prefix)
                 and c.config.name.endswith(suffix)]
        if not picks:
            return "n/a"
        vals = [c.mean_rounds for c in picks if c.mean_rounds == c.mean_rounds]
        if not vals:
            return "did not converge"
        return f"{sum(vals) / len(vals):.1f}"

    rows = [
        {"setting": "worst-case 2 bins",
         "with adversary (mean rounds)": mean_for("worst-2bins", True),
         "without adversary (mean rounds)": mean_for("worst-2bins", False)},
        {"setting": "worst-case m bins",
         "with adversary (mean rounds)": _mean_worst_many(report, True),
         "without adversary (mean rounds)": _mean_worst_many(report, False)},
        {"setting": "average-case m bins (odd)",
         "with adversary (mean rounds)": _mean_avg(report, True, odd=True),
         "without adversary (mean rounds)": _mean_avg(report, False, odd=True)},
        {"setting": "average-case m bins (even)",
         "with adversary (mean rounds)": _mean_avg(report, True, odd=False),
         "without adversary (mean rounds)": _mean_avg(report, False, odd=False)},
    ]
    return format_table(rows)


def _mean_worst_many(report: ExperimentReport, with_adv: bool) -> str:
    suffix = "/adv" if with_adv else "/noadv"
    picks = [c for c in report.cells
             if c.config.name.startswith("worst-")
             and not c.config.name.startswith("worst-2bins")
             and c.config.name.endswith(suffix)]
    vals = [c.mean_rounds for c in picks if c.mean_rounds == c.mean_rounds]
    return f"{sum(vals) / len(vals):.1f}" if vals else "n/a"


def _mean_avg(report: ExperimentReport, with_adv: bool, odd: bool) -> str:
    suffix = "/adv" if with_adv else "/noadv"
    parity = "(odd)" if odd else "(even)"
    picks = [c for c in report.cells
             if c.config.name.startswith("avg-") and parity in c.config.name
             and c.config.name.endswith(suffix)]
    vals = [c.mean_rounds for c in picks if c.mean_rounds == c.mean_rounds]
    return f"{sum(vals) / len(vals):.1f}" if vals else "n/a"
