"""Sweep builders for the paper's experiments.

Each builder returns a :class:`~repro.experiments.config.SweepConfig` whose
cells cover one experiment from the DESIGN.md per-experiment index.  The
benchmark harness calls these with small default sizes (so
``pytest benchmarks/`` finishes in minutes); the CLI and EXPERIMENTS.md use
larger grids.

Every builder accepts ``engine="vectorized" | "occupancy" | "occupancy-fused"``
and retargets all of its cells; the occupancy engines make the same sweeps
feasible at n = 10⁸–10⁹ for fixed m (see :mod:`repro.engine.occupancy`).
The sweeps whose default rule/adversary pairs all have count-space kernels
(theorem1, theorem10, figure1, adversary-threshold) default to the fused
multi-run occupancy engine (:func:`repro.engine.batch.run_batch_fused_occupancy`,
one (R, m) count tensor per cell); cells whose rule/adversary pair lacks a
count-space form are resolved back to ``"vectorized"`` by
:meth:`~repro.experiments.config.SweepConfig.with_engine`, i.e. they fall back
to the looped :func:`~repro.engine.batch.run_batch` path.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.analysis.theory import adversary_budget_sqrt_n
from repro.experiments.config import ExperimentConfig, SweepConfig

__all__ = [
    "DEFAULT_ADVERSARY_CONSTANT",
    "theorem1_sweep",
    "theorem2_sweep",
    "theorem3_sweep",
    "theorem4_sweep",
    "theorem10_sweep",
    "minimum_rule_attack_sweep",
    "adversary_threshold_sweep",
    "figure1_sweep",
    "rule_comparison_sweep",
]

#: Adversary strength used by the default experiment sweeps, as a fraction of
#: sqrt(n).  The paper allows any T <= sqrt(n), but the hidden constant of the
#: CLT kick-start (Lemma 14 with the constant c required by Lemma 16) makes a
#: full-strength balancing adversary impractically slow to overcome at
#: laptop-scale n; T = 0.25*sqrt(n) keeps the per-round escape probability a
#: sizable constant while preserving the Theta(sqrt n) scaling of the
#: adversary with n.  The adversary-threshold sweep varies this constant to
#: exhibit the blow-up as it approaches and exceeds 1.
DEFAULT_ADVERSARY_CONSTANT = 0.25


def theorem1_sweep(ns: Sequence[int] = (64, 128, 256, 512, 1024, 2048),
                   num_runs: int = 20, seed: int = 101,
                   engine: str = "occupancy-fused") -> SweepConfig:
    """THM1: worst-case (all-distinct) initial state, no adversary, n sweep."""
    sweep = SweepConfig(
        name="theorem1",
        description="Median rule, all-distinct initial values, no adversary: "
                    "consensus in O(log n) rounds (Theorem 1).",
    )
    for n in ns:
        sweep.add(ExperimentConfig(
            name=f"n={n}",
            workload="all-distinct",
            workload_params={"n": int(n)},
            num_runs=num_runs,
            seed=seed,
        ))
    return sweep.with_engine(engine)


def theorem2_sweep(ns: Sequence[int] = (256, 1024, 4096),
                   ms: Sequence[int] = (2, 3, 4, 8),
                   num_runs: int = 10, seed: int = 202,
                   adversary: str = "balancing",
                   adversary_constant: float = DEFAULT_ADVERSARY_CONSTANT,
                   engine: str = "vectorized") -> SweepConfig:
    """THM2: constant number of values, √n-bounded adversary, O(log n) rounds."""
    sweep = SweepConfig(
        name="theorem2",
        description="Median rule with a sqrt(n)-bounded adversary and a constant "
                    "number of values: almost stable consensus in O(log n) rounds "
                    "(Theorem 2).",
    )
    for n in ns:
        budget = adversary_budget_sqrt_n(int(n), adversary_constant)
        for m in ms:
            sweep.add(ExperimentConfig(
                name=f"n={n},m={m},T={budget}",
                workload="blocks",
                workload_params={"n": int(n), "m": int(m)},
                adversary=adversary,
                adversary_budget=budget,
                num_runs=num_runs,
                seed=seed,
            ))
    return sweep.with_engine(engine)


def theorem3_sweep(n: int = 2048,
                   ms: Sequence[int] = (2, 4, 8, 16, 32, 64, 128),
                   ns: Sequence[int] = (256, 512, 1024, 2048, 4096),
                   m_for_n_sweep: int = 16,
                   num_runs: int = 10, seed: int = 303,
                   adversary_constant: float = DEFAULT_ADVERSARY_CONSTANT,
                   engine: str = "vectorized") -> SweepConfig:
    """THM3: m sweep at fixed n plus n sweep at fixed m, adversary T=sqrt(n)."""
    sweep = SweepConfig(
        name="theorem3",
        description="Median rule with sqrt(n)-bounded adversary and m values: "
                    "O(log m · log log n + log n) rounds (Theorem 3).",
    )
    for m in ms:
        budget = adversary_budget_sqrt_n(n, adversary_constant)
        sweep.add(ExperimentConfig(
            name=f"m-sweep:n={n},m={m}",
            workload="blocks",
            workload_params={"n": int(n), "m": int(m)},
            adversary="balancing",
            adversary_budget=budget,
            num_runs=num_runs,
            seed=seed,
        ))
    for n_i in ns:
        budget = adversary_budget_sqrt_n(int(n_i), adversary_constant)
        sweep.add(ExperimentConfig(
            name=f"n-sweep:n={n_i},m={m_for_n_sweep}",
            workload="blocks",
            workload_params={"n": int(n_i), "m": int(m_for_n_sweep)},
            adversary="balancing",
            adversary_budget=budget,
            num_runs=num_runs,
            seed=seed + 1,
        ))
    return sweep.with_engine(engine)


def theorem4_sweep(n: int = 4096,
                   ms: Sequence[int] = (3, 4, 5, 8, 9, 16, 17, 32, 33),
                   with_adversary: bool = False,
                   num_runs: int = 10, seed: int = 404,
                   adversary_constant: float = DEFAULT_ADVERSARY_CONSTANT,
                   engine: str = "vectorized") -> SweepConfig:
    """THM4/THM21/COR22: uniform-random initial state, odd vs even m."""
    label = "corollary22" if with_adversary else "theorem21"
    sweep = SweepConfig(
        name=label,
        description="Average case (uniform random assignment to m bins): "
                    "O(log m + log log n) for odd m, Θ(log n) for even m "
                    "(Theorems 4/21, Corollary 22).",
    )
    budget = adversary_budget_sqrt_n(n, adversary_constant) if with_adversary else 0
    for m in ms:
        sweep.add(ExperimentConfig(
            name=f"m={m}{'(odd)' if m % 2 else '(even)'}",
            workload="uniform-random",
            workload_params={"n": int(n), "m": int(m)},
            adversary="balancing" if with_adversary else "null",
            adversary_budget=budget,
            num_runs=num_runs,
            seed=seed,
        ))
    return sweep.with_engine(engine)


def theorem10_sweep(ns: Sequence[int] = (256, 1024, 4096, 16384),
                    num_runs: int = 10, seed: int = 505,
                    balanced: bool = True,
                    adversary_constant: float = DEFAULT_ADVERSARY_CONSTANT,
                    engine: str = "occupancy-fused") -> SweepConfig:
    """THM10: two bins (balanced worst case) with a sqrt(n)-bounded adversary."""
    sweep = SweepConfig(
        name="theorem10",
        description="Two bins with a sqrt(n)-bounded adversary: n - O(sqrt n) balls "
                    "agree within O(log n) rounds (Theorem 10).",
    )
    for n in ns:
        budget = adversary_budget_sqrt_n(int(n), adversary_constant)
        params = {"n": int(n)}
        if balanced:
            params["minority"] = int(n) // 2
        sweep.add(ExperimentConfig(
            name=f"n={n},T={budget}",
            workload="two-bins",
            workload_params=params,
            adversary="balancing",
            adversary_budget=budget,
            num_runs=num_runs,
            seed=seed,
        ))
    return sweep.with_engine(engine)


def minimum_rule_attack_sweep(n: int = 1024, num_runs: int = 10, seed: int = 606,
                              budget: int = 1, delay: int = 30,
                              engine: str = "vectorized") -> SweepConfig:
    """MINRULE: minimum rule vs median rule under a reviving adversary."""
    sweep = SweepConfig(
        name="minimum-rule-attack",
        description="The Section 1.1 counterexample: a 1-bounded reviving adversary "
                    "defeats the minimum rule but not the median rule.",
    )
    for rule in ("minimum", "median"):
        sweep.add(ExperimentConfig(
            name=f"{rule}-rule",
            workload="two-bins",
            workload_params={"n": int(n), "minority": max(budget, 1), "low": 0, "high": 1},
            rule=rule,
            adversary="reviving",
            adversary_budget=budget,
            adversary_params={"delay": delay, "target_value": 0},
            num_runs=num_runs,
            seed=seed,
            max_rounds=max(200, delay * 6),
        ))
    return sweep.with_engine(engine)


def adversary_threshold_sweep(n: int = 4096,
                              constants: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
                              num_runs: int = 10, seed: int = 707,
                              engine: str = "occupancy-fused") -> SweepConfig:
    """ADVBOUND: balancing adversary with T = c·sqrt(n) for a range of c."""
    sweep = SweepConfig(
        name="adversary-threshold",
        description="Tightness of the sqrt(n) adversary bound: convergence time of the "
                    "median rule against a balancing adversary with T = c*sqrt(n).",
    )
    root = math.isqrt(n)
    for c in constants:
        budget = int(round(c * root))
        sweep.add(ExperimentConfig(
            name=f"T={budget} (c={c})",
            workload="two-bins",
            workload_params={"n": int(n), "minority": n // 2},
            adversary="balancing" if budget > 0 else "null",
            adversary_budget=budget,
            num_runs=num_runs,
            seed=seed,
            max_rounds=400,
        ))
    return sweep.with_engine(engine)


def figure1_sweep(n: int = 1024, m_many: int = 32, num_runs: int = 10,
                  seed: int = 808,
                  adversary_constant: float = DEFAULT_ADVERSARY_CONSTANT,
                  engine: str = "occupancy-fused") -> SweepConfig:
    """FIG1: one cell per entry of the paper's Figure 1 summary table."""
    budget = adversary_budget_sqrt_n(n, adversary_constant)
    sweep = SweepConfig(
        name="figure1",
        description="All cells of the paper's Figure 1 results table at a fixed n.",
    )
    # worst-case 2 bins, with and without adversary
    sweep.add(ExperimentConfig(
        name="worst-2bins/adv", workload="two-bins",
        workload_params={"n": n, "minority": n // 2},
        adversary="balancing", adversary_budget=budget, num_runs=num_runs, seed=seed))
    sweep.add(ExperimentConfig(
        name="worst-2bins/noadv", workload="two-bins",
        workload_params={"n": n, "minority": n // 2},
        num_runs=num_runs, seed=seed))
    # worst-case m bins, with and without adversary
    sweep.add(ExperimentConfig(
        name=f"worst-{m_many}bins/adv", workload="blocks",
        workload_params={"n": n, "m": m_many},
        adversary="balancing", adversary_budget=budget, num_runs=num_runs, seed=seed))
    sweep.add(ExperimentConfig(
        name=f"worst-{m_many}bins/noadv", workload="blocks",
        workload_params={"n": n, "m": m_many},
        num_runs=num_runs, seed=seed))
    # average-case m bins (odd and even), with and without adversary
    for m, parity in ((m_many + 1, "odd"), (m_many, "even")):
        sweep.add(ExperimentConfig(
            name=f"avg-{m}bins({parity})/adv", workload="uniform-random",
            workload_params={"n": n, "m": m},
            adversary="balancing", adversary_budget=budget, num_runs=num_runs, seed=seed))
        sweep.add(ExperimentConfig(
            name=f"avg-{m}bins({parity})/noadv", workload="uniform-random",
            workload_params={"n": n, "m": m},
            num_runs=num_runs, seed=seed))
    return sweep.with_engine(engine)


def rule_comparison_sweep(n: int = 1024, m: int = 16, num_runs: int = 10,
                          seed: int = 909,
                          rules: Sequence[str] = ("median", "voter", "three-majority",
                                                  "minimum"),
                          engine: str = "vectorized") -> SweepConfig:
    """Ablation: the power of two choices — median vs one-choice and other rules.

    With ``engine="occupancy"`` the comparison is restricted to the rules that
    have a count-space kernel, so the sweep runs instead of dying mid-way on
    an unsupported rule.  The whole default grid (including ``three-majority``)
    has kernels now; the filter only bites for custom kernel-less rules such
    as ``mean``.
    """
    if engine == "occupancy":
        from repro.engine.occupancy import OCCUPANCY_RULES

        rules = [r for r in rules if r in OCCUPANCY_RULES]
    sweep = SweepConfig(
        name="rule-comparison",
        description="Convergence of the median rule vs voter (one choice), 3-majority "
                    "and minimum rules from the same initial states.",
    )
    for rule in rules:
        sweep.add(ExperimentConfig(
            name=f"rule={rule}",
            workload="blocks",
            workload_params={"n": int(n), "m": int(m)},
            rule=rule,
            num_runs=num_runs,
            seed=seed,
            max_rounds=30 * int(math.log2(n)) if rule != "voter" else 40 * n,
        ))
    return sweep.with_engine(engine)
