"""Experiment configuration dataclasses.

An :class:`ExperimentConfig` fully describes one Monte-Carlo cell: workload,
rule, adversary, batch size, horizon and seed.  A :class:`SweepConfig` is a
list of cells produced by crossing parameter grids.  Both are plain, JSON-
serializable dataclasses so experiment definitions can be stored next to
their results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.engine.batch import BATCH_ENGINES

__all__ = ["ExperimentConfig", "SweepConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One Monte-Carlo experiment cell.

    Attributes
    ----------
    name:
        Human-readable cell label (used in tables, e.g. ``"n=4096,m=8,adv"``).
    workload / workload_params:
        Registry name and parameters of the initial-state generator
        (see :mod:`repro.experiments.workloads`); ``workload_params`` must
        contain ``n``.
    rule / rule_params:
        Update-rule registry name and constructor kwargs.
    adversary / adversary_budget / adversary_params:
        Adversary registry name, per-round budget T and constructor kwargs.
    num_runs:
        Number of independent runs for this cell.
    max_rounds:
        Per-run horizon (``None`` → engine default of ~40·log2 n).
    seed:
        Base seed; run i uses the i-th spawned child stream.
    engine:
        Simulation substrate: ``"vectorized"`` (O(n)-per-round value arrays),
        ``"occupancy"`` (O(m²)-per-round exact count dynamics; use it for
        very large n with few distinct values), or ``"occupancy-fused"``
        (all runs of the cell advance as one (R, m) count tensor — the
        fastest way to a convergence-round distribution when the
        rule/adversary pair has count-space kernels).
    """

    name: str
    workload: str
    workload_params: Dict[str, Any]
    rule: str = "median"
    rule_params: Dict[str, Any] = field(default_factory=dict)
    adversary: str = "null"
    adversary_budget: int = 0
    adversary_params: Dict[str, Any] = field(default_factory=dict)
    num_runs: int = 20
    max_rounds: Optional[int] = None
    seed: Optional[int] = 12345
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if "n" not in self.workload_params:
            raise ValueError("workload_params must include 'n'")
        if self.num_runs <= 0:
            raise ValueError("num_runs must be positive")
        if self.adversary_budget < 0:
            raise ValueError("adversary_budget must be non-negative")
        if self.engine not in BATCH_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; available: {sorted(BATCH_ENGINES)}"
            )

    @property
    def n(self) -> int:
        return int(self.workload_params["n"])

    @property
    def m(self) -> int:
        """Number of initial values implied by the workload (best effort)."""
        from repro.experiments.workloads import implied_support_width

        return implied_support_width(self.workload, self.workload_params)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentConfig":
        return cls(**data)


@dataclass
class SweepConfig:
    """An ordered collection of experiment cells."""

    name: str
    cells: List[ExperimentConfig] = field(default_factory=list)
    description: str = ""

    def add(self, cell: ExperimentConfig) -> None:
        self.cells.append(cell)

    def with_engine(self, engine: str) -> "SweepConfig":
        """A copy of the sweep with every cell retargeted to ``engine``.

        ``"occupancy-fused"`` is applied per cell: cells whose rule/adversary
        pair has no count-space form (e.g. the ``mean`` rule, or a custom
        identity-tracking adversary without a ``propose_counts`` override —
        every shipped rule/adversary pair now has one) or whose support is
        too wide for count space to win (m² ≫ n, e.g. the all-distinct
        workload) fall back to ``"vectorized"`` so the sweep still runs end
        to end — and at the right speed — instead of dying on an unsupported
        cell.  Resolution is
        delegated to :func:`repro.experiments.runner.resolve_cell_engine`,
        the same helper every execution path uses.
        """
        from repro.experiments.runner import resolve_cell_engine

        return SweepConfig(
            name=self.name,
            description=self.description,
            cells=[replace(cell, engine=resolve_cell_engine(
                cell.rule, cell.adversary, engine,
                cell.workload, cell.workload_params)) for cell in self.cells],
        )

    def __iter__(self) -> Iterator[ExperimentConfig]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "cells": [c.to_dict() for c in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepConfig":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            cells=[ExperimentConfig.from_dict(c) for c in data.get("cells", [])],
        )
