"""Experiment result records and persistence.

A :class:`CellResult` summarizes one executed experiment cell; an
:class:`ExperimentReport` groups the cells of a sweep with its metadata and
supports round-tripping to JSON and CSV so EXPERIMENTS.md tables can be
regenerated without re-running simulations.

The dict forms are schema-versioned (:data:`RESULT_SCHEMA_VERSION`): every
``to_dict`` stamps a ``"schema"`` field, ``from_dict`` accepts records up to
the current version (pre-versioning records count as version 1), and the
JSON writers use the strict non-finite encoding from
:mod:`repro.io.serialization` so NaN/inf metric values survive a round trip
through parsers that reject ``NaN`` literals.  :mod:`repro.store` persists
these same dict forms as its payload records.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.io.serialization import from_jsonable, to_jsonable

__all__ = ["RESULT_SCHEMA_VERSION", "CellResult", "ExperimentReport"]

#: Version of the CellResult/ExperimentReport dict schema.  Version 1 is the
#: original unstamped format; version 2 added the ``"schema"`` field itself.
RESULT_SCHEMA_VERSION = 2


def _check_schema(data: Dict[str, Any], what: str) -> None:
    version = int(data.get("schema", 1))
    if version > RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"{what} record has schema version {version}, newer than this "
            f"package understands ({RESULT_SCHEMA_VERSION}); upgrade repro")


def _to_builtin(value: Any) -> Any:
    """Convert NumPy scalars/arrays to plain Python for JSON serialization."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _to_builtin(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_builtin(v) for v in value]
    return value


@dataclass
class CellResult:
    """Summary of one executed experiment cell."""

    config: ExperimentConfig
    num_runs: int
    convergence_fraction: float
    mean_rounds: float
    median_rounds: float
    p90_rounds: float
    max_rounds: float
    rounds: List[float] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.config.n

    @property
    def m(self) -> int:
        return self.config.m

    def to_dict(self) -> Dict[str, Any]:
        return _to_builtin({
            "schema": RESULT_SCHEMA_VERSION,
            "config": self.config.to_dict(),
            "num_runs": self.num_runs,
            "convergence_fraction": self.convergence_fraction,
            "mean_rounds": self.mean_rounds,
            "median_rounds": self.median_rounds,
            "p90_rounds": self.p90_rounds,
            "max_rounds": self.max_rounds,
            "rounds": self.rounds,
            "extra": self.extra,
        })

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellResult":
        _check_schema(data, "CellResult")
        return cls(
            config=ExperimentConfig.from_dict(data["config"]),
            num_runs=int(data["num_runs"]),
            convergence_fraction=float(data["convergence_fraction"]),
            mean_rounds=float(data["mean_rounds"]),
            median_rounds=float(data["median_rounds"]),
            p90_rounds=float(data["p90_rounds"]),
            max_rounds=float(data["max_rounds"]),
            rounds=list(data.get("rounds", [])),
            extra=dict(data.get("extra", {})),
        )

    def flat_row(self) -> Dict[str, Any]:
        """A flat dict suitable for a CSV row / markdown table row."""
        return {
            "cell": self.config.name,
            "workload": self.config.workload,
            "n": self.n,
            "m": self.m,
            "rule": self.config.rule,
            "adversary": self.config.adversary,
            "T": self.config.adversary_budget,
            "runs": self.num_runs,
            "converged_frac": round(self.convergence_fraction, 3),
            "mean_rounds": round(self.mean_rounds, 2) if np.isfinite(self.mean_rounds) else "",
            "median_rounds": round(self.median_rounds, 2) if np.isfinite(self.median_rounds) else "",
            "p90_rounds": round(self.p90_rounds, 2) if np.isfinite(self.p90_rounds) else "",
            "max_rounds": round(self.max_rounds, 2) if np.isfinite(self.max_rounds) else "",
        }


@dataclass
class ExperimentReport:
    """A named collection of cell results (one sweep / one figure)."""

    name: str
    description: str = ""
    cells: List[CellResult] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def add(self, result: CellResult) -> None:
        self.cells.append(result)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return _to_builtin({
            "schema": RESULT_SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "meta": self.meta,
            "cells": [c.to_dict() for c in self.cells],
        })

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentReport":
        _check_schema(data, "ExperimentReport")
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            meta=dict(data.get("meta", {})),
            cells=[CellResult.from_dict(c) for c in data.get("cells", [])],
        )

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(to_jsonable(self.to_dict()), indent=2,
                                   allow_nan=False))
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "ExperimentReport":
        return cls.from_dict(from_jsonable(json.loads(Path(path).read_text())))

    def save_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = [c.flat_row() for c in self.cells]
        if not rows:
            path.write_text("")
            return path
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)
        return path
