"""Experiment execution: run a cell or a sweep and collect results.

:func:`run_cell` executes one :class:`~repro.experiments.config.ExperimentConfig`
(``num_runs`` independent simulations) and returns a
:class:`~repro.experiments.results.CellResult`; :func:`run_sweep` maps it over
a :class:`~repro.experiments.config.SweepConfig`, optionally with a process
pool for the independent cells.

Engine routing is delegated to :func:`repro.engine.batch.run_batch`: cells
with ``engine="occupancy-fused"`` advance all their runs as one (R, m) count
tensor (no per-run Python loop) when the rule/adversary pair supports it and
fall back to the looped occupancy path otherwise; the workload is built in
the matching representation by
:func:`~repro.experiments.workloads.make_workload_for_engine`.

Caching
-------
:func:`run_sweep` always recomputes.  For cached, resumable execution wrap a
sweep in :class:`repro.store.CachedSweepRunner`, which keys each cell by the
canonical hash of its config (:func:`repro.store.hashing.cell_key`).  The key
covers everything that determines the sampled distribution — workload +
params, rule + params, adversary + budget + params, ``num_runs``,
``max_rounds``, ``seed`` — and deliberately excludes ``name`` and ``engine``:
the three engines are equal in distribution (pinned by the differential
tests), so a sweep retargeted via ``SweepConfig.with_engine`` keeps its cache
hits, with the engine that actually produced a stored result recorded as
provenance.  The CLI exposes this as ``sweep --store DIR`` with ``--no-cache``
(bypass the store entirely) and ``--rerun`` (recompute and overwrite) as the
escape hatches.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.adversary.strategies import make_adversary
from repro.core.rules import get_rule
from repro.core.state import Configuration
from repro.engine.batch import fused_occupancy_cell_supported, run_batch
from repro.engine.parallel import (
    WorkItem,
    execute_work_items,
    format_cell_error,
)
from repro.experiments.config import ExperimentConfig, SweepConfig
from repro.experiments.results import CellResult, ExperimentReport
from repro.experiments.workloads import (
    implied_support_width,
    make_workload_for_engine,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.robustness.faults import fault_point
from repro.robustness.retry import classify_error

__all__ = [
    "EXECUTION_STATS",
    "emit_engine_metrics",
    "resolve_cell_engine",
    "run_cell",
    "run_sweep",
    "work_item_for_cell",
    "cell_result_from_pool_summary",
    "failed_cell_result",
    "attach_failures",
]

#: Per-process count of in-process cell executions (``run_cell`` calls).
#: The zero-recompute assertions (warm figure regeneration, offline store
#: replay) read this to prove no simulation happened; pooled/sharded child
#: processes keep their own counters, which is exactly the right scope for
#: "this process computed nothing".
EXECUTION_STATS = {"run_cell_calls": 0}


def resolve_cell_engine(rule: str, adversary: str, engine: str,
                        workload: Optional[str] = None,
                        workload_params: Optional[dict] = None) -> str:
    """The engine a cell actually executes on.

    ``"occupancy-fused"`` cells whose rule/adversary pair has no count-space
    form — or whose support is too wide for count space to win (m² ≫ n,
    e.g. the all-distinct workload where m = n) — fall back to
    ``"vectorized"``, so every entry point (sweeps, direct :func:`run_cell`,
    pooled :class:`~repro.engine.parallel.WorkItem` execution) degrades
    identically *before* a workload is built in the wrong representation.
    """
    if engine != "occupancy-fused":
        return engine
    n = m = None
    if workload_params:
        n = int(workload_params.get("n", 0)) or None
        m = implied_support_width(workload or "", workload_params) or None
    if not fused_occupancy_cell_supported(rule, adversary, n=n, m=m):
        return "vectorized"
    return engine


def emit_engine_metrics(batch, draws_before: Optional[Dict[str, int]] = None
                        ) -> None:
    """Trace one batch's engine-level work (no-op when tracing is disarmed).

    ``draws_before`` is a snapshot of
    :data:`repro.engine._multinomial.DRAW_STATS` taken before the batch ran;
    the deltas attribute multinomial traffic to this cell.  ``engine.rounds``
    sums the finite (converged) per-run round counts.
    """
    if not obs_trace.enabled():
        return
    obs_metrics.count("engine.runs", batch.num_runs)
    rounds = int(sum(r for r in batch.rounds if np.isfinite(r)))
    if rounds:
        obs_metrics.count("engine.rounds", rounds)
    if draws_before is not None:
        from repro.engine._multinomial import DRAW_STATS

        calls = DRAW_STATS["calls"] - draws_before["calls"]
        rows = DRAW_STATS["rows"] - draws_before["rows"]
        if calls:
            obs_metrics.count("engine.multinomial_calls", calls)
        if rows:
            obs_metrics.count("engine.multinomial_rows", rows)


def run_cell(config: ExperimentConfig) -> CellResult:
    """Execute one experiment cell in-process and summarize it."""
    EXECUTION_STATS["run_cell_calls"] += 1
    fault_point("worker.compute", cell=config.name)
    if obs_trace.enabled():
        from repro.engine._multinomial import DRAW_STATS

        draws_before = dict(DRAW_STATS)
    else:
        draws_before = None
    rule = get_rule(config.rule, **config.rule_params)
    engine = resolve_cell_engine(config.rule, config.adversary, config.engine,
                                 config.workload, config.workload_params)
    workload = make_workload_for_engine(config.workload, engine,
                                        **config.workload_params)

    adversary_factory = None
    if config.adversary_budget > 0 and config.adversary != "null":
        def adversary_factory():
            return make_adversary(config.adversary, budget=config.adversary_budget,
                                  **config.adversary_params)

    batch = run_batch(
        workload,
        num_runs=config.num_runs,
        rule=rule,
        adversary_factory=adversary_factory,
        seed=config.seed,
        max_rounds=config.max_rounds,
        engine=engine,
    )
    emit_engine_metrics(batch, draws_before)
    return CellResult(
        config=config,
        num_runs=batch.num_runs,
        convergence_fraction=batch.convergence_fraction,
        mean_rounds=batch.mean_rounds,
        median_rounds=batch.median_rounds,
        p90_rounds=batch.quantile(0.9),
        max_rounds=batch.max_rounds,
        rounds=[float(r) for r in batch.rounds],
        extra={"rule": config.rule, "adversary": config.adversary,
               "engine": engine},
    )


def work_item_for_cell(cell: ExperimentConfig) -> WorkItem:
    """Translate a cell into the picklable process-pool work description."""
    return WorkItem(
        label=cell.name,
        workload=cell.workload,
        workload_params=cell.workload_params,
        rule=cell.rule,
        rule_params=cell.rule_params,
        adversary=cell.adversary,
        adversary_budget=cell.adversary_budget,
        adversary_params=cell.adversary_params,
        num_runs=cell.num_runs,
        seed=cell.seed,
        max_rounds=cell.max_rounds,
        engine=cell.engine,
    )


def failed_cell_result(cell: ExperimentConfig, error: str,
                       attempts: int = 1,
                       kind: Optional[str] = None) -> CellResult:
    """The canonical record of a cell whose execution raised.

    The metrics use ``inf`` (the existing "did not converge" value — and,
    unlike NaN, equal to itself) so failure-carrying reports compare equal
    across backends; the error string (exception type + message, see
    :func:`repro.engine.parallel.format_cell_error`) rides in ``extra``
    together with the attempt count and the failure *kind* —
    ``"permanent"`` (a deterministic error, never retried) or
    ``"transient-exhausted"`` (a transient error that survived every
    attempt the :class:`~repro.robustness.RetryPolicy` budget allowed).
    Every backend derives these identically from the error string, so
    failure-carrying reports stay equal across backends.
    """
    if kind is None:
        kind = ("permanent" if classify_error(error) == "permanent"
                else "transient-exhausted")
    return CellResult(
        config=cell,
        num_runs=0,
        convergence_fraction=0.0,
        mean_rounds=float("inf"),
        median_rounds=float("inf"),
        p90_rounds=float("inf"),
        max_rounds=float("inf"),
        rounds=[],
        extra={"failed": True, "error": error, "attempts": int(attempts),
               "kind": kind},
    )


def attach_failures(report: ExperimentReport) -> List[Dict[str, Any]]:
    """Collect failed cells into ``report.meta["failures"]`` (and return them).

    The meta entry is only written when at least one cell failed, so clean
    reports keep their historical shape (and their equality with stored
    ones).  Entry order follows cell order, which every backend preserves.
    Each entry carries the attempt count and the permanent /
    transient-exhausted classification from :func:`failed_cell_result`.
    """
    failures = [{"cell": c.config.name, "error": str(c.extra.get("error", "")),
                 "attempts": int(c.extra.get("attempts", 1)),
                 "kind": str(c.extra.get("kind", ""))}
                for c in report.cells if c.extra.get("failed")]
    if failures:
        report.meta["failures"] = failures
    return failures


def cell_result_from_pool_summary(cell: ExperimentConfig,
                                  summary: Dict[str, Any]) -> CellResult:
    """Build a :class:`CellResult` from a pooled worker's flat summary.

    Summaries carry the per-run rounds and the resolved engine, so the
    result is identical to what a serial :func:`run_cell` produces for the
    same cell — the property that keeps reports (and store payloads) equal
    regardless of which execution backend computed them.  An error summary
    (``{"label", "error"}``, from a cell that raised in its worker) becomes
    the canonical :func:`failed_cell_result`.
    """
    if "error" in summary:
        return failed_cell_result(cell, str(summary["error"]))
    extra: Dict[str, Any] = {"rule": cell.rule, "adversary": cell.adversary}
    if "engine" in summary:
        extra["engine"] = summary["engine"]
    return CellResult(
        config=cell,
        num_runs=int(summary["num_runs"]),
        convergence_fraction=float(summary["convergence_fraction"]),
        mean_rounds=float(summary["mean_rounds"]),
        median_rounds=float(summary["median_rounds"]),
        p90_rounds=float(summary["p90_rounds"]),
        max_rounds=float(summary["max_rounds"]),
        rounds=[float(r) for r in summary.get("rounds", [])],
        extra=extra,
    )


def run_sweep(sweep: SweepConfig, max_workers: Optional[int] = 0) -> ExperimentReport:
    """Execute every cell of a sweep.

    Parameters
    ----------
    sweep:
        The sweep definition.
    max_workers:
        ``0``/``1`` → serial in-process execution (default; deterministic and
        test-friendly); ``None`` or >1 → a process pool over cells using
        :mod:`repro.engine.parallel`.

    Returns
    -------
    ExperimentReport
        A cell that raises during execution is *not* fatal on either path: it
        becomes a :func:`failed_cell_result` in its sweep position and is
        listed in ``report.meta["failures"]`` (label + error), so a poisoned
        cell can never abort a sweep or silently vanish from its report.
    """
    report = ExperimentReport(name=sweep.name, description=sweep.description)

    if max_workers in (0, 1):
        for cell in sweep:
            try:
                report.add(run_cell(cell))
            except Exception as exc:   # noqa: BLE001 — per-cell isolation
                report.add(failed_cell_result(cell, format_cell_error(exc)))
        attach_failures(report)
        return report

    # Parallel path: translate cells to picklable WorkItems; summaries carry
    # per-run rounds, so pooled reports equal serial ones cell for cell.
    items = [work_item_for_cell(cell) for cell in sweep]
    summaries = execute_work_items(items, max_workers=max_workers)
    for cell, summary in zip(sweep, summaries):
        report.add(cell_result_from_pool_summary(cell, summary))
    attach_failures(report)
    return report
