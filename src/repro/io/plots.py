"""Terminal-friendly plotting helpers (no matplotlib dependency).

The library runs in headless/CI environments, so "figures" are rendered as
Unicode sparklines and simple ASCII scatter/line charts.  Used by the
examples and by ``repro-consensus sweep`` output; all functions return plain
strings.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

__all__ = ["sparkline", "ascii_plot", "histogram"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a numeric series as a one-line Unicode sparkline.

    ``width`` (optional) down-samples the series to at most that many points
    by block averaging.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    vals = [float(v) for v in values if not math.isnan(float(v))]
    if not vals:
        return ""
    if width is not None and width > 0 and len(vals) > width:
        block = len(vals) / width
        vals = [
            sum(vals[int(i * block):max(int((i + 1) * block), int(i * block) + 1)])
            / max(len(vals[int(i * block):max(int((i + 1) * block), int(i * block) + 1)]), 1)
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_CHARS[0] * len(vals)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(_SPARK_CHARS[int(round((v - lo) * scale))] for v in vals)


def ascii_plot(xs: Sequence[float], ys: Sequence[float], width: int = 60,
               height: int = 15, label: str = "") -> str:
    """A minimal ASCII scatter/line chart of ``ys`` against ``xs``.

    Points are marked with ``*``; the y-range is printed on the left, the
    x-range underneath.  Intended for quick visual checks of growth shapes
    in terminals and logs, not for publication.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pts = [(float(x), float(y)) for x, y in zip(xs, ys)
           if not (math.isnan(float(x)) or math.isnan(float(y)))]
    if not pts:
        return "(no data)"
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    x_lo, x_hi = min(p[0] for p in pts), max(p[0] for p in pts)
    y_lo, y_hi = min(p[1] for p in pts), max(p[1] for p in pts)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in pts:
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"

    lines = []
    if label:
        lines.append(label)
    lines.append(f"{y_hi:10.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(" " * 12 + f"{x_lo:<.6g}" + " " * max(1, width - 16) + f"{x_hi:>.6g}")
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 10, width: int = 40,
              title: str = "") -> str:
    """A horizontal ASCII histogram of a numeric sample."""
    vals = [float(v) for v in values if not math.isnan(float(v))]
    if not vals:
        return "(no data)"
    if bins < 1:
        raise ValueError("bins must be positive")
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for v in vals:
        idx = min(int((v - lo) / span * bins), bins - 1)
        counts[idx] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        left = lo + span * i / bins
        right = lo + span * (i + 1) / bins
        bar = "█" * (0 if peak == 0 else int(round(count / peak * width)))
        lines.append(f"[{left:9.2f}, {right:9.2f}) {bar} {count}")
    return "\n".join(lines)
