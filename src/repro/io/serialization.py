"""Persistence of runs, trajectories and sweep results.

JSON is used for anything human-inspectable (experiment reports, run
summaries); ``.npz`` is used for bulk numeric data (trajectories, batched
round samples).  Both formats round-trip through the loaders in this module.

Non-finite floats
-----------------
NaN and ±inf occur routinely in this codebase (non-converged runs, drift
summaries), but ``NaN``/``Infinity`` literals are a Python extension that
strict JSON parsers reject.  The convention used by every JSON writer here
(and by :mod:`repro.store`) is an explicit tagged object::

    float("nan")   ->  {"__float__": "nan"}
    float("inf")   ->  {"__float__": "inf"}
    float("-inf")  ->  {"__float__": "-inf"}

:func:`to_jsonable` applies the encoding (along with NumPy → builtin
conversion); :func:`from_jsonable` inverts it.  Writers pass
``allow_nan=False`` to :func:`json.dumps` so any value that slipped past the
encoder fails loudly instead of emitting invalid JSON.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.state import Configuration
from repro.engine.run import SimulationResult
from repro.engine.trajectory import Trajectory

__all__ = [
    "to_jsonable",
    "from_jsonable",
    "save_result_summary",
    "load_result_summary",
    "save_trajectory_npz",
    "load_trajectory_npz",
    "save_rounds_npz",
    "load_rounds_npz",
]

#: Tag key of the non-finite float encoding (see module docstring).
NONFINITE_TAG = "__float__"


def _encode_float(value: float) -> Any:
    if math.isnan(value):
        return {NONFINITE_TAG: "nan"}
    if value == math.inf:
        return {NONFINITE_TAG: "inf"}
    if value == -math.inf:
        return {NONFINITE_TAG: "-inf"}
    return value


def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return _encode_float(float(value))
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def to_jsonable(value: Any) -> Any:
    """Convert ``value`` to strict-JSON-safe plain Python.

    NumPy scalars/arrays become builtins/lists; non-finite floats become
    tagged ``{"__float__": ...}`` objects (invert with :func:`from_jsonable`).
    """
    return _jsonable(value)


def from_jsonable(value: Any) -> Any:
    """Invert :func:`to_jsonable`: decode tagged non-finite floats in place."""
    if isinstance(value, dict):
        if set(value) == {NONFINITE_TAG}:
            return float(value[NONFINITE_TAG])
        return {k: from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [from_jsonable(v) for v in value]
    return value


def save_result_summary(result: SimulationResult, path: str | Path) -> Path:
    """Write a run's flat summary (not its trajectory) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(result.summary()), indent=2,
                               allow_nan=False))
    return path


def load_result_summary(path: str | Path) -> Dict[str, Any]:
    """Load a summary written by :func:`save_result_summary`."""
    data: Dict[str, Any] = from_jsonable(json.loads(Path(path).read_text()))
    return data


def save_trajectory_npz(trajectory: Trajectory, path: str | Path) -> Path:
    """Persist a trajectory's metric series (and full snapshots if present)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    if trajectory.metrics:
        for name in ("support_size", "agreement", "minority", "median_value",
                     "majority_value"):
            arrays[name] = trajectory.series(name)
        arrays["round"] = np.array([m.round for m in trajectory.metrics], dtype=np.int64)
    if trajectory.configurations:
        arrays["configurations"] = np.stack(
            [np.asarray(c.values) for c in trajectory.configurations])
    np.savez_compressed(path, **arrays)
    return path


def load_trajectory_npz(path: str | Path) -> Dict[str, np.ndarray]:
    """Load trajectory arrays saved by :func:`save_trajectory_npz`."""
    with np.load(Path(path)) as data:
        return {k: np.array(v) for k, v in data.items()}


def save_rounds_npz(rounds_by_label: Dict[str, np.ndarray], path: str | Path) -> Path:
    """Persist per-cell convergence-round samples (one array per label)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    safe = {label.replace("/", "_"): np.asarray(arr, dtype=np.float64)
            for label, arr in rounds_by_label.items()}
    np.savez_compressed(path, **safe)
    return path


def load_rounds_npz(path: str | Path) -> Dict[str, np.ndarray]:
    """Load round samples saved by :func:`save_rounds_npz`."""
    with np.load(Path(path)) as data:
        return {k: np.array(v) for k, v in data.items()}
