"""Persistence of runs, trajectories and sweep results.

JSON is used for anything human-inspectable (experiment reports, run
summaries); ``.npz`` is used for bulk numeric data (trajectories, batched
round samples).  Both formats round-trip through the loaders in this module.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.state import Configuration
from repro.engine.run import SimulationResult
from repro.engine.trajectory import Trajectory

__all__ = [
    "save_result_summary",
    "load_result_summary",
    "save_trajectory_npz",
    "load_trajectory_npz",
    "save_rounds_npz",
    "load_rounds_npz",
]


def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def save_result_summary(result: SimulationResult, path: str | Path) -> Path:
    """Write a run's flat summary (not its trajectory) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(result.summary()), indent=2))
    return path


def load_result_summary(path: str | Path) -> Dict[str, Any]:
    """Load a summary written by :func:`save_result_summary`."""
    return json.loads(Path(path).read_text())


def save_trajectory_npz(trajectory: Trajectory, path: str | Path) -> Path:
    """Persist a trajectory's metric series (and full snapshots if present)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    if trajectory.metrics:
        for name in ("support_size", "agreement", "minority", "median_value",
                     "majority_value"):
            arrays[name] = trajectory.series(name)
        arrays["round"] = np.array([m.round for m in trajectory.metrics], dtype=np.int64)
    if trajectory.configurations:
        arrays["configurations"] = np.stack(
            [np.asarray(c.values) for c in trajectory.configurations])
    np.savez_compressed(path, **arrays)
    return path


def load_trajectory_npz(path: str | Path) -> Dict[str, np.ndarray]:
    """Load trajectory arrays saved by :func:`save_trajectory_npz`."""
    with np.load(Path(path)) as data:
        return {k: np.array(v) for k, v in data.items()}


def save_rounds_npz(rounds_by_label: Dict[str, np.ndarray], path: str | Path) -> Path:
    """Persist per-cell convergence-round samples (one array per label)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    safe = {label.replace("/", "_"): np.asarray(arr, dtype=np.float64)
            for label, arr in rounds_by_label.items()}
    np.savez_compressed(path, **safe)
    return path


def load_rounds_npz(path: str | Path) -> Dict[str, np.ndarray]:
    """Load round samples saved by :func:`save_rounds_npz`."""
    with np.load(Path(path)) as data:
        return {k: np.array(v) for k, v in data.items()}
