"""Plain-text and markdown table helpers (shared by CLI and reports).

Thin wrappers over :mod:`repro.experiments.reporting` kept in ``repro.io`` so
that callers that only need formatting do not import the experiment stack.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

__all__ = ["render_table", "render_kv"]


def render_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None,
                 markdown: bool = True) -> str:
    """Render dict rows as a table (delegates to experiments.reporting)."""
    from repro.experiments.reporting import format_table

    return format_table(rows, columns=columns, markdown=markdown)


def render_kv(data: Dict[str, Any], title: Optional[str] = None) -> str:
    """Render a flat key/value mapping as an aligned block."""
    if not data:
        return "(empty)"
    width = max(len(str(k)) for k in data)
    lines = [f"{str(k).ljust(width)} : {v}" for k, v in data.items()]
    if title:
        lines.insert(0, title)
        lines.insert(1, "-" * len(title))
    return "\n".join(lines)
