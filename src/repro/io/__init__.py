"""Persistence and table-rendering helpers."""

from repro.io.serialization import (
    from_jsonable,
    load_result_summary,
    load_rounds_npz,
    load_trajectory_npz,
    save_result_summary,
    save_rounds_npz,
    save_trajectory_npz,
    to_jsonable,
)
from repro.io.plots import ascii_plot, histogram, sparkline
from repro.io.tables import render_kv, render_table

__all__ = [
    "to_jsonable",
    "from_jsonable",
    "save_result_summary",
    "load_result_summary",
    "save_trajectory_npz",
    "load_trajectory_npz",
    "save_rounds_npz",
    "load_rounds_npz",
    "render_table",
    "render_kv",
    "sparkline",
    "ascii_plot",
    "histogram",
]
