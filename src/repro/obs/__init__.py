"""Zero-overhead-when-disabled telemetry for the sweep stack.

Three small modules, modeled on the :mod:`repro.robustness.faults`
activation pattern:

:mod:`repro.obs.trace`
    Span/event API over ``time.perf_counter`` with per-process JSONL sinks
    (``<dir>/trace-<pid>.jsonl``).  Armed in-process via :func:`activate`,
    across process trees via the ``REPRO_TRACE`` environment variable, or
    from the CLI (``sweep --trace [DIR]``).  Disarmed, every entry point is
    a module-global ``None`` check returning a shared no-op.
:mod:`repro.obs.metrics`
    Cataloged counters/histograms emitted as immediate trace lines
    (crash-exact, merged fleet-wide at export time).
:mod:`repro.obs.export`
    Torn-line-tolerant merge of the per-process shards into one span tree
    plus an aggregate summary (``repro obs summarize``).

Everything observational: no record emitted here enters cell hashes,
stored payloads, or reports, so arming a trace never changes results.
"""

from repro.obs.trace import (
    ENV_VAR,
    NOOP_SPAN,
    PARENT_ENV_VAR,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    activate,
    active_tracer,
    current_span_id,
    deactivate,
    enabled,
    event,
    span,
    span_id_for,
    warning_event,
)
from repro.obs.metrics import METRICS, count, observe
from repro.obs.export import (
    MergedTrace,
    SpanNode,
    merge_trace,
    read_trace,
    validate_record,
    validate_trace,
)

__all__ = [
    "ENV_VAR",
    "PARENT_ENV_VAR",
    "TRACE_SCHEMA_VERSION",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "activate",
    "deactivate",
    "active_tracer",
    "enabled",
    "span",
    "event",
    "warning_event",
    "current_span_id",
    "span_id_for",
    "METRICS",
    "count",
    "observe",
    "MergedTrace",
    "SpanNode",
    "merge_trace",
    "read_trace",
    "validate_record",
    "validate_trace",
]
