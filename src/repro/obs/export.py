"""Merge per-process trace shards into one span tree + aggregate summary.

A traced fleet leaves one ``trace-<pid>.jsonl`` shard per process (see
:mod:`repro.obs.trace`).  This module reassembles them:

* :func:`read_trace` loads every shard, *skipping* undecodable lines with
  one :class:`~repro.robustness.TornLogWarning` — a worker SIGKILLed
  mid-append tears its trailing line, and the merge must tolerate that the
  same way the execution-log reader does;
* :func:`validate_record` / :func:`validate_trace` enforce the trace
  schema (:data:`~repro.obs.trace.TRACE_SCHEMA_VERSION`, per-kind required
  fields, metric names against the :data:`~repro.obs.metrics.METRICS`
  catalog) — the CI traced-sweep leg runs every line through this;
* :func:`merge_trace` builds the :class:`MergedTrace`: span instances
  linked into a tree (deterministic span ids make cross-process edges
  work; spans whose parent record was torn away attach under a synthetic
  root, flagged ``orphan``), counters summed and histograms summarized
  across all shards.

Everything here is read-only over the trace directory; merging never
modifies shards.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import METRICS
from repro.obs.trace import TRACE_SCHEMA_VERSION

__all__ = [
    "SpanNode",
    "MergedTrace",
    "read_trace",
    "validate_record",
    "validate_trace",
    "merge_trace",
]

#: Synthetic parent id for spans whose recorded parent never made it to disk
#: (torn shard, killed worker) and for genuinely root spans in multi-root
#: traces.
SYNTHETIC_ROOT = "(root)"

_KINDS = ("span", "event", "metric")


def read_trace(trace_dir: str | Path
               ) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """All records of every shard under ``trace_dir``; tolerant of torn lines.

    Returns ``(records, stats)`` where ``stats`` counts ``files``, ``lines``
    and ``torn`` (undecodable) lines.  Shards are read in sorted filename
    order and records keep their within-shard order; a missing directory is
    an empty trace, not an error.
    """
    trace_dir = Path(trace_dir)
    records: List[Dict[str, Any]] = []
    stats = {"files": 0, "lines": 0, "torn": 0}
    if not trace_dir.exists():
        return records, stats
    for shard in sorted(trace_dir.glob("trace-*.jsonl")):
        stats["files"] += 1
        for line in shard.read_text().splitlines():
            if not line.strip():
                continue
            stats["lines"] += 1
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("not an object")
                records.append(record)
            except (json.JSONDecodeError, ValueError):
                stats["torn"] += 1
    if stats["torn"]:
        from repro.robustness import TornLogWarning

        warnings.warn(
            f"trace directory {trace_dir} contained {stats['torn']} "
            f"undecodable line(s) (shard torn by a killed worker); skipped",
            TornLogWarning, stacklevel=2)
    return records, stats


def validate_record(record: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``record`` is a well-formed trace line."""
    if record.get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError(f"schema {record.get('schema')!r} != "
                         f"{TRACE_SCHEMA_VERSION}")
    kind = record.get("kind")
    if kind not in _KINDS:
        raise ValueError(f"unknown kind {kind!r}")
    if not isinstance(record.get("pid"), int):
        raise ValueError("missing/invalid pid")
    if not isinstance(record.get("at"), (int, float)):
        raise ValueError("missing/invalid at")
    if kind == "span":
        if not isinstance(record.get("name"), str) or not record["name"]:
            raise ValueError("span without a name")
        if not isinstance(record.get("span"), str):
            raise ValueError("span without an id")
        parent = record.get("parent")
        if parent is not None and not isinstance(parent, str):
            raise ValueError("invalid span parent")
        dur = record.get("dur_s")
        if not isinstance(dur, (int, float)) or dur < 0:
            raise ValueError("span without a non-negative dur_s")
        if not isinstance(record.get("attrs"), dict):
            raise ValueError("span without attrs")
    elif kind == "event":
        if not isinstance(record.get("name"), str) or not record["name"]:
            raise ValueError("event without a name")
        if not isinstance(record.get("attrs"), dict):
            raise ValueError("event without attrs")
    else:   # metric
        name = record.get("metric")
        if name not in METRICS:
            raise ValueError(f"uncataloged metric {name!r}")
        if not isinstance(record.get("value"), (int, float)):
            raise ValueError("metric without a numeric value")
        if not isinstance(record.get("labels"), dict):
            raise ValueError("metric without labels")


def validate_trace(trace_dir: str | Path) -> Dict[str, int]:
    """Validate every surviving line of a trace; raises on the first bad one.

    Returns the :func:`read_trace` stats augmented with per-kind counts —
    what the CI traced-sweep leg prints on success.
    """
    records, stats = read_trace(trace_dir)
    kinds = {kind: 0 for kind in _KINDS}
    for i, record in enumerate(records):
        try:
            validate_record(record)
        except ValueError as exc:
            raise ValueError(f"trace record {i} invalid: {exc}: "
                             f"{repr(record)[:200]}") from exc
        kinds[record["kind"]] += 1
    return {**stats, **kinds}


@dataclass
class SpanNode:
    """One span instance in the merged tree."""

    name: str
    span_id: str
    parent_id: Optional[str]
    pid: int
    at: float
    dur_s: float
    attrs: Dict[str, Any]
    children: List["SpanNode"] = field(default_factory=list)
    orphan: bool = False   # recorded parent never made it to disk

    def walk(self):
        yield self
        for child in sorted(self.children, key=lambda s: s.at):
            yield from child.walk()


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1,
              max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[idx]


@dataclass
class MergedTrace:
    """The reassembled trace of one run: tree, events, aggregated metrics."""

    records: List[Dict[str, Any]]
    stats: Dict[str, int]
    roots: List[SpanNode]
    spans: List[SpanNode]
    events: List[Dict[str, Any]]
    counters: Dict[str, float]
    counter_labels: Dict[str, Dict[str, float]]
    histograms: Dict[str, Dict[str, float]]

    @property
    def processes(self) -> List[int]:
        return sorted({r["pid"] for r in self.records
                       if isinstance(r.get("pid"), int)})

    def spans_named(self, name: str) -> List[SpanNode]:
        return [s for s in self.spans if s.name == name]

    def events_named(self, name: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e.get("name") == name]

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """Aggregate facts of the whole trace (JSON-safe)."""
        by_name: Dict[str, Dict[str, float]] = {}
        for node in self.spans:
            agg = by_name.setdefault(node.name, {"count": 0, "total_s": 0.0})
            agg["count"] += 1
            agg["total_s"] = round(agg["total_s"] + node.dur_s, 6)
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "processes": len(self.processes),
            "files": self.stats.get("files", 0),
            "lines": self.stats.get("lines", 0),
            "torn_lines": self.stats.get("torn", 0),
            "spans": by_name,
            "events": len(self.events),
            "warnings": len(self.events_named("warning")),
            "counters": dict(sorted(self.counters.items())),
            "histograms": self.histograms,
        }

    def tree_lines(self, max_children: int = 24) -> List[str]:
        """The span tree as indented text (for ``repro obs summarize``)."""
        lines: List[str] = []

        def render(node: SpanNode, depth: int) -> None:
            attrs = node.attrs
            tag = ""
            for key in ("cell", "sweep", "stage"):
                if key in attrs:
                    tag = f" {key}={str(attrs[key])[:12]}"
                    break
            outcome = attrs.get("outcome")
            tag += f" [{outcome}]" if outcome else ""
            tag += " (orphan)" if node.orphan else ""
            lines.append(f"{'  ' * depth}{node.name}"
                         f" {node.dur_s:.3f}s pid={node.pid}{tag}")
            shown = sorted(node.children, key=lambda s: s.at)
            for child in shown[:max_children]:
                render(child, depth + 1)
            if len(shown) > max_children:
                lines.append(f"{'  ' * (depth + 1)}"
                             f"... {len(shown) - max_children} more")

        for root in sorted(self.roots, key=lambda s: s.at):
            render(root, 0)
        return lines


def merge_trace(trace_dir: str | Path) -> MergedTrace:
    """Reassemble a trace directory (see the module docstring)."""
    records, stats = read_trace(trace_dir)

    spans: List[SpanNode] = []
    events: List[Dict[str, Any]] = []
    counters: Dict[str, float] = {}
    counter_labels: Dict[str, Dict[str, float]] = {}
    samples: Dict[str, List[float]] = {}

    for record in records:
        kind = record.get("kind")
        if kind == "span":
            try:
                spans.append(SpanNode(
                    name=str(record["name"]),
                    span_id=str(record["span"]),
                    parent_id=record.get("parent"),
                    pid=int(record.get("pid", -1)),
                    at=float(record.get("at", 0.0)),
                    dur_s=float(record.get("dur_s", 0.0)),
                    attrs=dict(record.get("attrs", {})),
                ))
            except (TypeError, ValueError, KeyError):
                stats["torn"] = stats.get("torn", 0) + 1
        elif kind == "event":
            events.append(record)
        elif kind == "metric":
            name = record.get("metric")
            value = record.get("value")
            if not isinstance(name, str) \
                    or not isinstance(value, (int, float)):
                continue
            meta = METRICS.get(name, {})
            if meta.get("kind") == "histogram":
                samples.setdefault(name, []).append(float(value))
            else:
                counters[name] = counters.get(name, 0) + value
                labels = record.get("labels") or {}
                if labels:
                    label_key = json.dumps(labels, sort_keys=True,
                                           allow_nan=False)
                    detail = counter_labels.setdefault(name, {})
                    detail[label_key] = detail.get(label_key, 0) + value

    histograms: Dict[str, Dict[str, float]] = {}
    for name, values in samples.items():
        values.sort()
        histograms[name] = {
            "count": len(values),
            "sum": round(sum(values), 6),
            "min": round(values[0], 6),
            "max": round(values[-1], 6),
            "mean": round(sum(values) / len(values), 6),
            "p50": round(_percentile(values, 0.50), 6),
            "p90": round(_percentile(values, 0.90), 6),
        }

    # -- tree assembly --------------------------------------------------- #
    # Deterministic span ids mean one id can have several instances (the
    # same cell computed in two processes after a worker restart); parent
    # edges prefer an instance in the same pid, falling back to the
    # earliest instance anywhere — good enough for a tree whose ids are
    # content-derived, and stable because shards are read in sorted order.
    by_id: Dict[str, List[SpanNode]] = {}
    for node in spans:
        by_id.setdefault(node.span_id, []).append(node)

    roots: List[SpanNode] = []
    for node in spans:
        if node.parent_id is None:
            roots.append(node)
            continue
        candidates = by_id.get(node.parent_id)
        if not candidates:
            node.orphan = True   # parent torn away (or never closed)
            roots.append(node)
            continue
        parent = next((c for c in candidates if c.pid == node.pid),
                      min(candidates, key=lambda s: s.at))
        if parent is node:   # self-parenting guard (duplicate ids)
            roots.append(node)
        else:
            parent.children.append(node)

    return MergedTrace(records=records, stats=stats, roots=roots,
                       spans=spans, events=events, counters=counters,
                       counter_labels=counter_labels, histograms=histograms)
