"""Structured trace spans and events for the execution stack.

Execution is a first-class *output*: every layer of the sweep stack (runner,
backends, shard leases, retry policy, store, kernel seam, fault injector)
emits structured telemetry through this module, so a multi-process fleet can
be operated, debugged and perf-tuned from its trace instead of from
``print`` statements and warnings that vanish inside worker subprocesses.

Model — the :class:`~repro.robustness.faults.FaultInjector` pattern:

* a module-global :class:`Tracer` is armed either in-process
  (:func:`activate` / :func:`deactivate`), via the ``REPRO_TRACE``
  environment variable (a directory path, inherited by spawned worker
  fleets), or from the CLI (``sweep --trace [DIR]``);
* with no tracer armed, :func:`span` / :func:`event` /
  :func:`repro.obs.metrics.count` are a single module-global ``None`` check
  returning a shared no-op — zero overhead on hot paths, no files, no
  directories;
* when armed, each *process* appends JSON lines to its own sink
  ``<dir>/trace-<pid>.jsonl`` (O_APPEND, one line per write, no cross-
  process interleaving); :mod:`repro.obs.export` merges the per-process
  shards afterwards, tolerating shards torn by SIGKILLed workers.

Record kinds (``TRACE_SCHEMA_VERSION`` = schema of every line):

``span``
    One record per *completed* span, written at exit:
    ``{schema, kind, name, span, parent, pid, at, dur_s, attrs}``.
    ``at`` is the wall-clock entry time; ``dur_s`` comes from
    ``time.perf_counter``.  A span interrupted by SIGKILL writes nothing —
    its children (already written) surface as orphans in the merged tree.
``event``
    A point-in-time occurrence: ``{schema, kind, name, span, pid, at,
    attrs}``; ``span`` is the enclosing span id (or ``None``).
``metric``
    One counter increment or histogram sample (see
    :mod:`repro.obs.metrics`): ``{schema, kind, metric, value, labels,
    span, pid, at}``.  Increments are written immediately, so counters from
    a killed worker stay exact up to the kill.

Span identity
-------------
Span ids are *deterministic*: ``sha1("<name>|<key>")`` where ``key`` is the
caller-supplied identity (e.g. the canonical cell hash) or, absent that,
the canonical JSON of the entry attrs.  A cell recomputed by a restarted
worker therefore carries the same span id as the first attempt — instances
are distinguished by ``(pid, occurrence)`` at merge time — which is what
makes cross-process / cross-restart correlation possible without a shared
id service.  Volatile facts (worker identity, outcome, attempt counts)
belong in ``attrs`` — added via :meth:`Span.set` before exit — never in the
identity key.

Parent propagation
------------------
Within a process, parentage is the span stack (a ``contextvars`` stack, so
it is correct under threads).  Across processes, the root span of a trace
exports its id as ``REPRO_TRACE_PARENT``; worker processes spawned while it
is open adopt it as the parent of their own top-level spans, so the merged
tree has one root covering the whole fleet.

Events are observational only: nothing emitted here enters cell hashes,
stored payloads, reports or any provenance-determining state, and the
tracer never raises into the host program (a failed write disables the
sink for the remainder of the process).
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import math
import os
import time
from pathlib import Path
from typing import Any, Dict, IO, Optional

__all__ = [
    "ENV_VAR",
    "PARENT_ENV_VAR",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "Span",
    "activate",
    "deactivate",
    "active_tracer",
    "enabled",
    "span",
    "event",
    "warning_event",
    "current_span_id",
    "span_id_for",
]

#: Environment variable carrying the trace directory.  Set by
#: :func:`activate` so spawned worker processes inherit the armed tracer.
ENV_VAR = "REPRO_TRACE"

#: Environment variable carrying the root span id of the trace, exported
#: while the root span is open so child processes parent under it.
PARENT_ENV_VAR = "REPRO_TRACE_PARENT"

#: Version stamped into every trace line.  Bump on incompatible changes;
#: :func:`repro.obs.export.validate_record` enforces it.
TRACE_SCHEMA_VERSION = 1


def span_id_for(name: str, key: Optional[str] = None,
                attrs: Optional[Dict[str, Any]] = None) -> str:
    """The deterministic span id for ``(name, key)`` (see module docstring).

    Exposed so tests (and the export layer) can predict ids: the same
    ``name``/``key`` pair yields the same id in every process and across
    worker restarts.
    """
    if key is None:
        key = json.dumps(_clean_attrs(attrs or {}), sort_keys=True,
                         allow_nan=False)
    return hashlib.sha1(f"{name}|{key}".encode()).hexdigest()[:16]


def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Attrs as JSON-safe scalars (telemetry must never fail to serialize)."""
    out: Dict[str, Any] = {}
    for k, v in attrs.items():
        if isinstance(v, bool) or v is None or isinstance(v, (int, str)):
            out[str(k)] = v
        elif isinstance(v, float):
            out[str(k)] = v if math.isfinite(v) else str(v)
        else:
            out[str(k)] = str(v)
    return out


class Span:
    """An open span: a context manager writing one record on exit."""

    __slots__ = ("_tracer", "name", "span_id", "_attrs", "_parent",
                 "_t0", "_at", "_token", "_exported_env")

    def __init__(self, tracer: "Tracer", name: str,
                 key: Optional[str], attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self._attrs = _clean_attrs(attrs)
        self.span_id = span_id_for(name, key, self._attrs)
        self._parent: Optional[str] = None
        self._t0 = 0.0
        self._at = 0.0
        self._token: Optional[contextvars.Token] = None
        self._exported_env = False

    def set(self, **attrs: Any) -> "Span":
        """Attach late attrs (outcome, attempts, ...) before the span closes.

        These are recorded in the span line but never enter the span id, so
        ids stay stable across retries and worker restarts.
        """
        self._attrs.update(_clean_attrs(attrs))
        return self

    def __enter__(self) -> "Span":
        stack = _SPAN_STACK.get()
        self._parent = stack[-1] if stack else _root_parent()
        self._token = _SPAN_STACK.set(stack + (self.span_id,))
        if not stack and self._tracer.export_env \
                and PARENT_ENV_VAR not in os.environ:
            # root span of this process tree: children spawned while it is
            # open parent under it (workers see it via the environment)
            os.environ[PARENT_ENV_VAR] = self.span_id
            self._exported_env = True
        self._at = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = time.perf_counter() - self._t0
        if self._token is not None:
            _SPAN_STACK.reset(self._token)
        if self._exported_env:
            os.environ.pop(PARENT_ENV_VAR, None)
        if exc_type is not None and "outcome" not in self._attrs:
            self._attrs["outcome"] = f"raised:{exc_type.__name__}"
        self._tracer.write({
            "kind": "span",
            "name": self.name,
            "span": self.span_id,
            "parent": self._parent,
            "at": self._at,
            "dur_s": round(dur, 9),
            "attrs": self._attrs,
        })


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()
    span_id = None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: Singleton returned by :func:`span` when tracing is disabled.
NOOP_SPAN = _NoopSpan()

_SPAN_STACK: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_obs_span_stack", default=())


def _root_parent() -> Optional[str]:
    """Cross-process parent for top-level spans, resolved at *use* time.

    Read from the environment on every lookup rather than cached on the
    tracer: the exporting root span pops the variable when it closes, so a
    later root span in the same process correctly gets no parent (caching
    would freeze the first root's id and self-parent every sweep after the
    first).  Worker processes see the coordinator's export through their
    inherited environment.
    """
    return os.environ.get(PARENT_ENV_VAR)


class Tracer:
    """Appends trace records to this process's JSONL sink.

    The sink path embeds ``os.getpid()`` and is re-resolved on every write,
    so a tracer inherited through ``fork`` transparently starts a new shard
    for the child instead of interleaving with its parent.  Write failures
    disable the sink for the rest of the process — telemetry must never
    break the run it observes.
    """

    def __init__(self, directory: str | Path, export_env: bool = True) -> None:
        self.directory = Path(directory)
        self.export_env = export_env
        self._pid: Optional[int] = None
        self._fh: Optional[IO[str]] = None
        self._broken = False

    def sink_path(self) -> Path:
        """This process's shard file (``trace-<pid>.jsonl``)."""
        return self.directory / f"trace-{os.getpid()}.jsonl"

    def _ensure_sink(self) -> Optional[IO[str]]:
        pid = os.getpid()
        if self._fh is not None and self._pid == pid:
            return self._fh
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        # forked child: fresh shard (the root parent, being read from the
        # environment at use time, needs no refresh here)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.sink_path(), "a", encoding="utf-8")
            self._pid = pid
        except OSError:
            self._broken = True
            self._fh = None
        return self._fh

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record (schema/pid stamped here); never raises."""
        if self._broken:
            return
        fh = self._ensure_sink()
        if fh is None:
            return
        record = {"schema": TRACE_SCHEMA_VERSION, "pid": os.getpid(), **record}
        try:
            fh.write(json.dumps(record, allow_nan=False) + "\n")
            fh.flush()
        except (OSError, ValueError, TypeError):
            self._broken = True

    # -- record constructors ------------------------------------------- #
    def span(self, name: str, key: Optional[str] = None,
             **attrs: Any) -> Span:
        return Span(self, name, key, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        stack = _SPAN_STACK.get()
        self.write({
            "kind": "event",
            "name": name,
            "span": stack[-1] if stack else _root_parent(),
            "at": time.time(),
            "attrs": _clean_attrs(attrs),
        })

    def metric(self, metric: str, value: float,
               labels: Dict[str, Any]) -> None:
        stack = _SPAN_STACK.get()
        self.write({
            "kind": "metric",
            "metric": metric,
            "value": value,
            "labels": _clean_attrs(labels),
            "span": stack[-1] if stack else _root_parent(),
            "at": time.time(),
        })


# ---------------------------------------------------------------------- #
# process-global activation state (the FaultInjector pattern)
# ---------------------------------------------------------------------- #
_UNRESOLVED = object()   # env not consulted yet (spawned child processes)
_TRACER: Any = _UNRESOLVED


def activate(directory: str | Path, export_env: bool = True) -> Tracer:
    """Arm tracing into ``directory`` (and, via env, in future children)."""
    global _TRACER
    _TRACER = Tracer(directory, export_env=export_env)
    if export_env:
        os.environ[ENV_VAR] = str(directory)
    return _TRACER


def deactivate() -> None:
    """Disarm tracing and clear the environment handoff."""
    global _TRACER
    if isinstance(_TRACER, Tracer) and _TRACER._fh is not None:
        try:
            _TRACER._fh.close()
        except OSError:
            pass
    _TRACER = None
    os.environ.pop(ENV_VAR, None)
    os.environ.pop(PARENT_ENV_VAR, None)


def _resolve() -> Optional[Tracer]:
    global _TRACER
    if _TRACER is _UNRESOLVED:
        raw = os.environ.get(ENV_VAR)
        _TRACER = Tracer(raw, export_env=False) if raw else None
    return _TRACER


def active_tracer() -> Optional[Tracer]:
    """The armed tracer, resolving the env handoff if needed."""
    return _resolve()


def enabled() -> bool:
    """Whether tracing is armed in this process (cheap; safe on hot paths)."""
    tracer = _TRACER
    if tracer is _UNRESOLVED:
        tracer = _resolve()
    return tracer is not None


def span(name: str, key: Optional[str] = None, **attrs: Any):
    """Open a span (context manager); the shared no-op when disarmed.

    ``key`` is the span's identity (e.g. the canonical cell hash) — see the
    module docstring for why ids are deterministic.
    """
    tracer = _TRACER
    if tracer is _UNRESOLVED:
        tracer = _resolve()
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, key, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit a point-in-time event (no-op when disarmed)."""
    tracer = _TRACER
    if tracer is _UNRESOLVED:
        tracer = _resolve()
    if tracer is not None:
        tracer.event(name, **attrs)


def warning_event(category: str, message: str, **attrs: Any) -> None:
    """The structured twin of a ``warnings.warn`` call.

    Warnings raised inside pool/shard worker subprocesses never reach the
    coordinating process's ``warnings`` machinery; dual-emitting them here
    makes degradation visible in the merged trace of the whole fleet.
    ``category`` is the warning class name (``DegradedExecutionWarning``,
    ``StoreIntegrityWarning``, ``TornLogWarning``, ...).
    """
    tracer = _TRACER
    if tracer is _UNRESOLVED:
        tracer = _resolve()
    if tracer is not None:
        tracer.event("warning", category=category, message=message, **attrs)


def current_span_id() -> Optional[str]:
    """The innermost open span id in this process (or ``None``)."""
    stack = _SPAN_STACK.get()
    return stack[-1] if stack else None
