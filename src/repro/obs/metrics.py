"""Named counters and histograms for the sweep stack.

A thin semantic layer over :mod:`repro.obs.trace`: every increment /
observation is one immediately-appended ``kind: "metric"`` trace line, so

* counters from a worker killed mid-sweep are exact up to the kill (there
  is no end-of-process flush to lose);
* aggregation is deferred to :func:`repro.obs.export.merge_trace`, which
  sums counters and summarizes histogram samples across every per-process
  shard — the merged numbers therefore cover the whole fleet;
* the disabled path is the same module-global ``None`` check as
  :func:`repro.obs.trace.event` — zero overhead, no validation, nothing
  written.

Metric names come from the :data:`METRICS` catalog below (the event catalog
of the README "Observability" section).  Emitting an uncataloged name
raises ``ValueError`` *when tracing is armed* — the CI trace-validation leg
checks every line against this catalog, so drift between emitters and the
catalog fails fast instead of producing unaggregatable traces.
"""

from __future__ import annotations

import math
from typing import Any, Dict

from repro.obs import trace as _trace

__all__ = ["METRICS", "count", "observe"]

#: The metric catalog: name → (kind, description).  ``counter`` values are
#: summed at merge time; ``histogram`` samples are summarized
#: (count/sum/min/max/mean/p50/p90).
METRICS: Dict[str, Dict[str, str]] = {
    # cache / sweep accounting (emitted by CachedSweepRunner + backends)
    "cache.hits": {
        "kind": "counter",
        "doc": "sweep cells served from the store without executing"},
    "cache.misses": {
        "kind": "counter",
        "doc": "sweep cells that required execution"},
    "cache.failures": {
        "kind": "counter",
        "doc": "cells whose execution ended as a canonical failure record"},
    "cells.computed": {
        "kind": "counter",
        "doc": "completed fresh cell computations (shard: 1:1 with "
               "shard/executions.jsonl lines)"},
    "cells.failed": {
        "kind": "counter",
        "doc": "cells that exhausted their budget or failed permanently "
               "(counted once, at the site that records the failure)"},
    "cell.elapsed_s": {
        "kind": "histogram",
        "doc": "wall-clock seconds per fresh cell computation"},
    # retry / degradation (repro.robustness)
    "retry.attempts": {
        "kind": "counter",
        "doc": "retry attempts consumed beyond each cell's first try"},
    "retry.backoff_s": {
        "kind": "histogram",
        "doc": "seconds slept before each retry"},
    "degraded": {
        "kind": "counter",
        "doc": "degradation-ladder rung transitions (label rung=...)"},
    "fault.fired": {
        "kind": "counter",
        "doc": "deterministic fault-injector firings (labels seam=, shape=)"},
    # shard lease lifecycle (repro.store.shard)
    "lease.acquired": {
        "kind": "counter", "doc": "lease files won via O_CREAT|O_EXCL"},
    "lease.acquire_lost": {
        "kind": "counter", "doc": "acquire races lost to another worker"},
    "lease.released": {
        "kind": "counter", "doc": "leases released after a resolved cell"},
    "lease.reclaimed": {
        "kind": "counter", "doc": "stale leases reclaimed from dead owners"},
    "lease.wait_s": {
        "kind": "histogram",
        "doc": "seconds spent sleeping on other workers' in-flight leases"},
    # coordinator transport (repro.store.coordinator)
    "coordinator.requests": {
        "kind": "counter",
        "doc": "HTTP requests handled by the lease coordinator"},
    "coordinator.retries": {
        "kind": "counter",
        "doc": "client-side transport retries (connection errors / 5xx)"},
    "coordinator.errors": {
        "kind": "counter",
        "doc": "coordinator requests that exhausted the transport budget"},
    "coordinator.request_s": {
        "kind": "histogram",
        "doc": "client-observed seconds per coordinator request attempt"},
    # store traffic (repro.store.store)
    "store.put": {
        "kind": "counter", "doc": "payload records persisted"},
    "store.get.hit": {
        "kind": "counter", "doc": "store reads that returned a valid record"},
    "store.get.miss": {
        "kind": "counter", "doc": "store reads with no (or stale) record"},
    "store.quarantine": {
        "kind": "counter",
        "doc": "payloads quarantined by read-time integrity verification"},
    # engine / kernel seam (repro.engine)
    "engine.runs": {
        "kind": "counter", "doc": "independent simulation runs executed"},
    "engine.rounds": {
        "kind": "counter",
        "doc": "rounds simulated by converged runs (sum of finite "
               "convergence rounds)"},
    "engine.multinomial_calls": {
        "kind": "counter",
        "doc": "calls into the exact-multinomial kernel seam"},
    "engine.multinomial_rows": {
        "kind": "counter",
        "doc": "multinomial vectors drawn through the kernel seam"},
    "kernel.detect_s": {
        "kind": "histogram",
        "doc": "seconds spent detecting/building a compiled kernel provider"},
}


def _check(name: str, kind: str) -> None:
    spec = METRICS.get(name)
    if spec is None:
        raise ValueError(f"uncataloged metric {name!r}; add it to "
                         f"repro.obs.metrics.METRICS")
    if spec["kind"] != kind:
        raise ValueError(f"metric {name!r} is a {spec['kind']}, "
                         f"not a {kind}")


def count(name: str, value: int = 1, **labels: Any) -> None:
    """Increment counter ``name`` by ``value`` (no-op when disarmed)."""
    tracer = _trace.active_tracer() if _trace.enabled() else None
    if tracer is None:
        return
    _check(name, "counter")
    tracer.metric(name, int(value), labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record one histogram sample for ``name`` (no-op when disarmed)."""
    tracer = _trace.active_tracer() if _trace.enabled() else None
    if tracer is None:
        return
    _check(name, "histogram")
    value = float(value)
    if not math.isfinite(value):
        # the strict-JSON convention: a NaN/inf sample fails loudly at the
        # emitter (like an uncataloged name) instead of reaching the trace
        # sink, whose writer enforces allow_nan=False
        raise ValueError(f"non-finite sample {value!r} for metric {name!r}")
    tracer.metric(name, value, labels)
