"""Fault injection, retry policy, and degradation warnings.

The robustness substrate for the execution stack, in three parts:

1. :mod:`repro.robustness.faults` — a deterministic, seed-driven
   :class:`FaultPlan`/:class:`FaultInjector` arming named seams across the
   store, lease, worker, and kernel layers (``REPRO_FAULT_PLAN`` env or
   in-process :func:`activate`; zero overhead unarmed).
2. :mod:`repro.robustness.retry` — one :class:`RetryPolicy` (attempt
   budget, jittered exponential backoff, per-sweep deadline) threaded
   through every execution backend, with permanent/transient error
   classification shared by the serial, pool, and shard paths.
3. Degradation warnings — each rung of the degradation ladder (corrupt
   entry quarantined on read, shard→pool→serial backend downgrade,
   unwritable store) announces itself exactly once per incident through a
   typed warning below, so degraded runs are visible without being fatal.

See the README "Robustness" section for the seam catalog and the policy
knobs, and ``tests/chaos.py`` for the harness that certifies the
invariants under randomized fault schedules.
"""

from __future__ import annotations

from .faults import (
    ENV_VAR,
    SEAMS,
    SHAPES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    activate,
    active_plan,
    deactivate,
    fault_point,
    in_worker_process,
    mark_worker_process,
    maybe_torn,
    read_fault_journal,
)
from .retry import (
    DEFAULT_RETRY_POLICY,
    PERMANENT_ERROR_TYPES,
    Deadline,
    RetryExhausted,
    RetryPolicy,
    SweepDeadlineError,
    call_with_retry,
    classify_error,
)

__all__ = [
    # faults
    "ENV_VAR", "SEAMS", "SHAPES", "FaultInjector", "FaultPlan", "FaultSpec",
    "InjectedFault", "activate", "active_plan", "deactivate", "fault_point",
    "in_worker_process", "mark_worker_process", "maybe_torn",
    "read_fault_journal",
    # retry
    "DEFAULT_RETRY_POLICY", "PERMANENT_ERROR_TYPES", "Deadline",
    "RetryExhausted", "RetryPolicy", "SweepDeadlineError", "call_with_retry",
    "classify_error",
    # degradation warnings
    "DegradedExecutionWarning", "StoreIntegrityWarning", "TornLogWarning",
]


class DegradedExecutionWarning(UserWarning):
    """Execution continued on a lower rung of the degradation ladder.

    Emitted once per incident when the shard backend falls back to pool
    (lease infrastructure unavailable), the pool falls back to serial
    (worker processes unusable), or results cannot be persisted (store
    directory not writable).
    """


class StoreIntegrityWarning(UserWarning):
    """A stored entry failed sha256/parse verification on read.

    The damaged payload (and sidecar, if any) was quarantined and the cell
    will be recomputed transparently on the next coordinated run.
    """


class TornLogWarning(UserWarning):
    """An append-only JSONL log contained undecodable lines (torn append).

    The damaged lines were skipped; the surviving records are returned.
    """
