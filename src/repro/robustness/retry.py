"""Retry, backoff, and failure-classification policy for sweep execution.

One :class:`RetryPolicy` is threaded through :class:`CachedSweepRunner` and
all three execution backends, so every path from "cell raised" to "cell
failed" obeys the same three knobs:

* **per-cell attempt budget** (``max_attempts``) — a cell is computed at
  most this many times across the whole coordinated run, including
  attempts recorded in an earlier run's ``state:"failed"`` marker (the
  shard backend persists attempt counts in the marker, so budgets survive
  worker restarts);
* **jittered exponential backoff** (``base_delay_s``/``max_delay_s``/
  ``jitter``) — deterministic per ``(label, attempt)``, so two workers
  retrying the same cell do not thunder in lockstep yet a chaos run
  reproduces exactly from its seed;
* **per-sweep deadline** (``deadline_s``) — a wall-clock budget for the
  entire sweep; when it expires, remaining retries are abandoned and the
  affected cells surface as ordinary failures rather than hanging a fleet.

Errors are classified by *type name* (:func:`classify_error`): programming
and configuration errors (``KeyError: no-such-rule`` …) are **permanent**
and never retried — retrying a deterministic bug burns the budget and
delays the report without changing the outcome.  Everything else
(``OSError``, :class:`InjectedFault`, crashes, …) is **transient** and
retried until the budget is exhausted, at which point the failure
escalates with ``kind="transient-exhausted"`` so ``report.meta["failures"]``
distinguishes "this cell is wrong" from "this cell was unlucky".
Classification operates on the ``"ExcType: message"`` strings produced by
:func:`format_cell_error`, so the pool and shard paths — which only see the
serialized error — classify identically to the in-process serial path.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "PERMANENT_ERROR_TYPES",
    "classify_error",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "RetryExhausted",
    "SweepDeadlineError",
    "Deadline",
    "call_with_retry",
    "emit_retry_telemetry",
]

#: Exception type names treated as permanent (deterministic) failures.
#: Matched against the leading ``ExcType`` of a formatted cell error.
PERMANENT_ERROR_TYPES: Tuple[str, ...] = (
    "KeyError",
    "ValueError",
    "TypeError",
    "AttributeError",
    "NotImplementedError",
    "AssertionError",
)


def classify_error(error: "str | BaseException") -> str:
    """``"permanent"`` or ``"transient"`` for an error (string or exception).

    Strings are the ``"ExcType: message"`` form of ``format_cell_error``;
    only the leading type name is consulted, so a transient error whose
    *message* mentions ``ValueError`` is still transient.
    """
    if isinstance(error, BaseException):
        name = type(error).__name__
    else:
        name = str(error).split(":", 1)[0].strip()
    return "permanent" if name in PERMANENT_ERROR_TYPES else "transient"


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + backoff schedule for one sweep.

    The default (``max_attempts=1``) is *no retry* — exactly the behavior
    the stack had before this policy existed, so nothing changes unless a
    caller opts in (``CachedSweepRunner(..., retry=RetryPolicy(3))`` or
    ``python -m repro sweep ... --retries 3``).
    """

    max_attempts: int = 1
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    def backoff_s(self, attempt: int, token: str = "") -> float:
        """Deterministic jittered delay before retry number ``attempt``.

        ``attempt`` counts completed attempts (1 → delay before the 2nd
        try).  Exponential in ``attempt`` and capped at ``max_delay_s``;
        the jitter fraction is drawn from a ``Random`` seeded on
        ``token#attempt`` so the schedule is reproducible per cell, not
        synchronized across cells.
        """
        base = min(self.max_delay_s, self.base_delay_s * (2.0 ** (attempt - 1)))
        if self.jitter <= 0:
            return base
        frac = random.Random(f"{token}#{attempt}").uniform(
            -self.jitter, self.jitter)
        return max(0.0, base * (1.0 + frac))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for handing the policy to spawned shard workers."""
        return {"max_attempts": self.max_attempts,
                "base_delay_s": self.base_delay_s,
                "max_delay_s": self.max_delay_s,
                "jitter": self.jitter,
                "deadline_s": self.deadline_s}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RetryPolicy":
        return cls(**data)


DEFAULT_RETRY_POLICY = RetryPolicy()


class RetryExhausted(RuntimeError):
    """A transient error survived every attempt the budget allowed."""

    def __init__(self, label: str, error: str, attempts: int) -> None:
        self.label = label
        self.error = error
        self.attempts = attempts
        super().__init__(
            f"{label}: transient error persisted through {attempts} "
            f"attempt(s): {error}")


class SweepDeadlineError(RuntimeError):
    """The per-sweep wall-clock deadline expired while retries remained."""


class Deadline:
    """A monotonic-clock deadline shared by every retry loop of one sweep."""

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self._expires: Optional[float] = (
            None if seconds is None else time.monotonic() + seconds)

    def expired(self) -> bool:
        return self._expires is not None and time.monotonic() >= self._expires

    def remaining(self) -> Optional[float]:
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())

    def check(self, label: str = "sweep") -> None:
        if self.expired():
            raise SweepDeadlineError(
                f"{label}: sweep deadline of {self.seconds}s expired")


def emit_retry_telemetry(label: str, key: Optional[str], attempt: int,
                         delay: float, error: str) -> None:
    """Trace one retry decision (cold path — only reached on a transient
    failure with budget left).

    Imported lazily so :mod:`repro.robustness` never depends on
    :mod:`repro.obs` at module level; with tracing disarmed this is one
    function call per *retry*, not per cell.  ``key`` is the canonical cell
    hash when the caller has one — the acceptance contract is that every
    retry event carries it.
    """
    try:
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace
    except ImportError:   # pragma: no cover — partial install
        return
    if not obs_trace.enabled():
        return
    obs_trace.event("retry", cell=key or label, label=label,
                    attempt=attempt, backoff_s=round(delay, 6), error=error)
    obs_metrics.count("retry.attempts")
    obs_metrics.observe("retry.backoff_s", delay)


def call_with_retry(fn: Callable[[], Any], policy: RetryPolicy,
                    label: str = "", deadline: Optional[Deadline] = None,
                    prior_attempts: int = 0,
                    key: Optional[str] = None) -> Any:
    """Run ``fn`` under ``policy``, retrying transient errors.

    ``prior_attempts`` charges attempts already spent on this label (e.g.
    recorded in a ``state:"failed"`` marker by an earlier run) against the
    budget.  Permanent errors re-raise immediately; a transient error on
    the final allowed attempt raises :class:`RetryExhausted` carrying the
    formatted error and the total attempt count.  ``key`` is the cell's
    canonical store hash, attached to retry trace events (telemetry only —
    it does not affect the schedule, which is keyed on ``label``).
    """
    attempt = prior_attempts
    while True:
        if deadline is not None:
            deadline.check(label or "cell")
        attempt += 1
        try:
            return fn()
        except SweepDeadlineError:
            raise
        except Exception as exc:   # noqa: BLE001 — classification decides
            error = f"{type(exc).__name__}: {exc}"
            if classify_error(exc) == "permanent":
                raise
            if attempt >= policy.max_attempts:
                raise RetryExhausted(label or "cell", error, attempt) from exc
            delay = policy.backoff_s(attempt, token=label)
            if deadline is not None:
                rem = deadline.remaining()
                if rem is not None:
                    if rem <= 0:
                        raise RetryExhausted(label or "cell", error,
                                             attempt) from exc
                    delay = min(delay, rem)
            emit_retry_telemetry(label, key, attempt, delay, error)
            if delay > 0:
                time.sleep(delay)
