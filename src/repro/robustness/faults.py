"""Deterministic, seed-driven fault injection for the execution stack.

The paper's headline claim is *robustness*: the dynamics converge despite
adversarial corruption.  The execution stack that reproduces it (store,
leases, shard workers, compiled kernels) deserves the same treatment — every
failure seam injectable on demand, so recovery paths are certified by tests
instead of discovered in production.  This module makes the fault a
first-class input:

* a :class:`FaultPlan` names *seams* (fixed points in the stack, see
  :data:`SEAMS`) and arms each with a *shape* (:data:`SHAPES`) for a bounded
  number of firings (``times`` — the repeat-N-then-heal contract, so every
  plan eventually heals and a retried sweep completes);
* a :class:`FaultInjector` holds an active plan.  Instrumented call sites
  invoke :func:`fault_point` (and writers :func:`maybe_torn`); with no plan
  armed this is a single module-global ``None`` check — zero overhead on
  the hot path;
* activation is either in-process (:func:`activate` / :func:`deactivate`)
  or via the ``REPRO_FAULT_PLAN`` environment variable (inline JSON or a
  path to a JSON file), which child worker processes inherit — the same
  plan therefore arms an entire shard fleet;
* every firing is appended to the plan's optional *journal* file (JSONL),
  so a chaos harness can assert that faults actually fired (a chaos run in
  which nothing failed certifies nothing).

Seam catalog
------------
=========================  ====================================================
``store.payload_write``    :meth:`ResultStore.put` JSON payload write
``store.sidecar_write``    NPZ rounds-sidecar write
``store.index_rebuild``    ``index.json`` regeneration
``store.artifact_write``   :class:`ArtifactRegistry` ledger write
``lease.acquire``          :meth:`LeaseManager.acquire` (before file creation)
``lease.release``          :meth:`LeaseManager.release`
``lease.reclaim``          :meth:`LeaseManager.reclaim` (stale-lease path)
``shard.log_append``       ``executions.jsonl`` append
``worker.compute``         per-cell compute entry (``run_cell`` and the
                           pool worker entry point — every backend)
``kernel.compile``         compiled-multinomial provider build/load
``subprocess.spawn``       pool / shard worker-process creation
=========================  ====================================================

Fault shapes
------------
``raise``
    Raise :class:`InjectedFault` (a ``RuntimeError``, so existing
    degradation paths that already catch ``RuntimeError`` treat it exactly
    like the real failure it models).
``torn-write``
    The cooperating writer truncates its payload mid-write
    (:func:`maybe_torn`), modeling a crash between ``write`` and ``fsync``.
``delay``
    Sleep ``delay_s`` seconds (models a slow disk / loaded host).
``stale-clock``
    The cooperating lease writer backdates its lease file by ``skew_s``
    seconds and records a foreign hostname, making a *live* lease look
    reclaimable — the adversarial input to the stale-lease protocol.
``kill-worker``
    ``SIGKILL`` the current process.  Only fires in processes marked via
    :func:`mark_worker_process` (shard/pool children), never in a
    coordinator.

Counters are **per process**: a ``times=1`` fault fires once in each process
that reaches the seam.  Firing order within a plan is deterministic given
the call sequence, and :meth:`FaultPlan.random` derives the whole schedule
from one integer seed, so a chaos failure reproduces from its seed alone.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Dict, List, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "SEAMS",
    "SHAPES",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "activate",
    "deactivate",
    "active_plan",
    "fault_point",
    "maybe_torn",
    "mark_worker_process",
    "in_worker_process",
    "read_fault_journal",
]

#: Environment variable carrying a serialized plan (inline JSON when the
#: value starts with ``{``, otherwise a path to a JSON file).  Set by
#: :func:`activate` so spawned worker processes inherit the armed plan.
ENV_VAR = "REPRO_FAULT_PLAN"

SEAMS = (
    "store.payload_write",
    "store.sidecar_write",
    "store.index_rebuild",
    "store.artifact_write",
    "lease.acquire",
    "lease.release",
    "lease.reclaim",
    "shard.log_append",
    "worker.compute",
    "kernel.compile",
    "subprocess.spawn",
)

SHAPES = ("raise", "torn-write", "delay", "stale-clock", "kill-worker")

#: Shapes that require the seam's cooperation (the injector returns the spec
#: and the call site applies it); the rest are applied inside ``fire``.
_COOPERATIVE_SHAPES = ("torn-write", "stale-clock")


class InjectedFault(RuntimeError):
    """A deterministic fault raised at an armed seam.

    Subclasses ``RuntimeError`` on purpose: the degradation paths that
    already catch ``RuntimeError`` for the *real* failure (sandboxed
    process spawn, broken pools, compile errors) handle the injected one
    identically, so the fault exercises the production recovery code, not
    a parallel test-only path.
    """

    def __init__(self, seam: str, message: str = "") -> None:
        self.seam = seam
        super().__init__(message or f"injected fault at seam {seam!r}")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: a seam, a shape, and a firing budget.

    Attributes
    ----------
    seam / shape:
        Where and what (see :data:`SEAMS` / :data:`SHAPES`).
    times:
        Fire on the first ``times`` matching invocations *per process*,
        then heal permanently (repeat-N-then-heal).
    delay_s:
        Sleep duration for the ``delay`` shape.
    skew_s:
        How far into the past a ``stale-clock`` lease is backdated.
    worker_only:
        Fire only in processes marked by :func:`mark_worker_process`
        (forced ``True`` for ``kill-worker`` — a coordinator must never
        kill itself).  A skipped coordinator invocation does *not* consume
        the budget.
    """

    seam: str
    shape: str
    times: int = 1
    delay_s: float = 0.02
    skew_s: float = 900.0
    worker_only: bool = False

    def __post_init__(self) -> None:
        if self.seam not in SEAMS:
            raise ValueError(f"unknown fault seam {self.seam!r}; "
                             f"choose from {SEAMS}")
        if self.shape not in SHAPES:
            raise ValueError(f"unknown fault shape {self.shape!r}; "
                             f"choose from {SHAPES}")
        if self.shape == "kill-worker" and not self.worker_only:
            object.__setattr__(self, "worker_only", True)


@dataclass
class FaultPlan:
    """A named, serializable schedule of armed faults.

    ``seed`` identifies the plan (and, for :meth:`random` plans, fully
    determines it); ``journal`` is an optional JSONL path receiving one
    record per firing, shared by every process running under the plan.
    """

    specs: List[FaultSpec] = field(default_factory=list)
    seed: int = 0
    journal: Optional[str] = None

    # -- serialization -------------------------------------------------- #
    def to_json(self) -> str:
        return json.dumps({"schema": 1, "seed": self.seed,
                           "journal": self.journal,
                           "specs": [asdict(s) for s in self.specs]},
                          allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(specs=[FaultSpec(**s) for s in data.get("specs", [])],
                   seed=int(data.get("seed", 0)),
                   journal=data.get("journal"))

    @classmethod
    def load(cls, source: str | Path) -> "FaultPlan":
        """Parse a plan from inline JSON or a JSON file path."""
        text = str(source)
        if text.lstrip().startswith("{"):
            return cls.from_json(text)
        return cls.from_json(Path(text).read_text())

    # -- seeded randomized schedules ------------------------------------ #
    #: Seams (with their allowed shapes) eligible for randomized chaos
    #: schedules.  ``kernel.compile`` is deliberately excluded: a mid-sweep
    #: kernel fallback switches the bit stream (reproducibility is
    #: backend-scoped), which would break report-equality invariants —
    #: it gets its own dedicated certification instead.  ``lease.release``
    #: and ``store.index_rebuild`` are restricted to ``delay``: a raising
    #: release is covered by the dedicated release-retry test, and the
    #: index is rebuilt lazily after plans heal.
    CHAOS_SEAMS: ClassVar[Dict[str, Tuple[str, ...]]] = {
        "store.payload_write": ("raise", "torn-write", "delay"),
        "store.sidecar_write": ("raise", "torn-write", "delay"),
        "store.index_rebuild": ("delay",),
        "lease.acquire": ("raise", "stale-clock", "delay"),
        "lease.release": ("delay",),
        "lease.reclaim": ("raise", "delay"),
        "shard.log_append": ("raise", "torn-write", "delay"),
        "worker.compute": ("raise", "delay", "kill-worker"),
        "subprocess.spawn": ("raise",),
    }

    @classmethod
    def random(cls, seed: int, max_faults: int = 4, max_times: int = 2,
               journal: Optional[str | Path] = None) -> "FaultPlan":
        """A deterministic randomized schedule derived entirely from ``seed``.

        Draws 2–``max_faults`` specs over :data:`CHAOS_SEAMS`, at most one
        ``stale-clock`` and one ``kill-worker`` per plan (each multiplies
        the worst-case compute count of one cell), every spec bounded by
        ``times <= max_times`` so the plan always heals.
        """
        rng = random.Random(int(seed))
        n_faults = rng.randint(2, max(2, int(max_faults)))
        specs: List[FaultSpec] = []
        used_singletons = set()
        seams = sorted(cls.CHAOS_SEAMS)
        for _ in range(n_faults):
            seam = rng.choice(seams)
            shape = rng.choice(cls.CHAOS_SEAMS[seam])
            if shape in ("stale-clock", "kill-worker"):
                if shape in used_singletons:
                    shape = "delay" if "delay" in cls.CHAOS_SEAMS[seam] \
                        else "raise"
                else:
                    used_singletons.add(shape)
            times = 1 if shape in ("stale-clock", "kill-worker") \
                else rng.randint(1, max(1, int(max_times)))
            specs.append(FaultSpec(seam=seam, shape=shape, times=times,
                                   delay_s=round(rng.uniform(0.005, 0.04), 4)))
        return cls(specs=specs, seed=int(seed),
                   journal=None if journal is None else str(journal))


class FaultInjector:
    """Evaluates an armed :class:`FaultPlan` at each instrumented seam."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._fired = [0] * len(plan.specs)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def fire(self, seam: str,
             ctx: Optional[Dict[str, Any]] = None) -> Optional[FaultSpec]:
        """Apply the first armed spec matching ``seam`` (if any).

        Self-applying shapes (``raise``, ``delay``, ``kill-worker``) are
        executed here; cooperative shapes (``torn-write``,
        ``stale-clock``) are returned for the call site to apply.
        Returns ``None`` when no fault fires.
        """
        spec = self._claim(seam)
        if spec is None:
            return None
        self._journal(spec, ctx)
        self._trace(spec, ctx)
        if spec.shape == "delay":
            time.sleep(spec.delay_s)
            return None
        if spec.shape == "raise":
            raise InjectedFault(seam)
        if spec.shape == "kill-worker":
            os.kill(os.getpid(), signal.SIGKILL)
            return None   # pragma: no cover — the line above does not return
        return spec       # cooperative shape: the caller applies it

    def _claim(self, seam: str) -> Optional[FaultSpec]:
        with self._lock:
            for i, spec in enumerate(self.plan.specs):
                if spec.seam != seam or self._fired[i] >= spec.times:
                    continue
                if spec.worker_only and not _IS_WORKER:
                    continue   # budget not consumed: the fault waits for a worker
                self._fired[i] += 1
                return spec
        return None

    def fired_counts(self) -> List[int]:
        """Per-spec firing counts (this process only)."""
        with self._lock:
            return list(self._fired)

    def _trace(self, spec: FaultSpec, ctx: Optional[Dict[str, Any]]) -> None:
        """Mirror a firing into the armed trace (lazy import: firings are
        rare, and :mod:`repro.robustness` must not import :mod:`repro.obs`
        at module level).  ``kill-worker`` traces *before* the SIGKILL —
        metric lines are flushed per write, so even a death is recorded."""
        try:
            from repro.obs import metrics as obs_metrics
            from repro.obs import trace as obs_trace
        except ImportError:   # pragma: no cover — partial install
            return
        if not obs_trace.enabled():
            return
        # seam ctx keys win over the injector's own fields (a lease seam's
        # ctx carries worker=<name>, which must not collide)
        attrs = {"seam": spec.seam, "shape": spec.shape,
                 "in_worker": _IS_WORKER}
        attrs.update((str(k), str(v)) for k, v in (ctx or {}).items())
        obs_trace.event("fault.fired", **attrs)
        obs_metrics.count("fault.fired", seam=spec.seam, shape=spec.shape)

    def _journal(self, spec: FaultSpec, ctx: Optional[Dict[str, Any]]) -> None:
        if not self.plan.journal:
            return
        line = json.dumps({"seam": spec.seam, "shape": spec.shape,
                           "pid": os.getpid(), "worker": _IS_WORKER,
                           "ctx": {k: str(v) for k, v in (ctx or {}).items()},
                           "at": time.time()}, allow_nan=False) + "\n"
        try:
            # kill-worker journals *before* the SIGKILL, so even a death
            # leaves its record; O_APPEND single write — no interleaving
            with open(self.plan.journal, "a") as fh:
                fh.write(line)
        except OSError:   # journaling must never break the injected run
            pass


# ---------------------------------------------------------------------- #
# process-global activation state
# ---------------------------------------------------------------------- #
_UNRESOLVED = object()   # env not consulted yet (spawned child processes)
_INJECTOR: Any = _UNRESOLVED
_IS_WORKER = False


def mark_worker_process() -> None:
    """Mark this process as a worker: ``worker_only`` faults may fire here.

    Called by shard worker children and pool initializers — never by a
    coordinating process, so ``kill-worker`` can only take down processes
    the stack already knows how to replace.
    """
    global _IS_WORKER
    _IS_WORKER = True


def in_worker_process() -> bool:
    """Whether this process was marked via :func:`mark_worker_process`."""
    return _IS_WORKER


def activate(plan: FaultPlan, export_env: bool = True) -> FaultInjector:
    """Arm a plan in this process (and, via env, in future child processes)."""
    global _INJECTOR
    _INJECTOR = FaultInjector(plan)
    if export_env:
        os.environ[ENV_VAR] = plan.to_json()
    return _INJECTOR


def deactivate() -> None:
    """Disarm fault injection and clear the environment handoff."""
    global _INJECTOR
    _INJECTOR = None
    os.environ.pop(ENV_VAR, None)


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, resolving the env handoff if needed."""
    injector = _resolve()
    return None if injector is None else injector.plan


def _resolve() -> Optional[FaultInjector]:
    global _INJECTOR
    if _INJECTOR is _UNRESOLVED:
        raw = os.environ.get(ENV_VAR)
        if not raw:
            _INJECTOR = None
        else:
            try:
                _INJECTOR = FaultInjector(FaultPlan.load(raw))
            except (OSError, ValueError, TypeError, KeyError) as exc:
                # lazy import: the package __init__ defines the warning
                # classes *after* importing this module
                from repro.robustness import DegradedExecutionWarning

                warnings.warn(f"ignoring malformed {ENV_VAR}: {exc} — "
                              f"running without fault injection",
                              DegradedExecutionWarning, stacklevel=3)
                _INJECTOR = None
    return _INJECTOR


def fault_point(seam: str, **ctx: Any) -> Optional[FaultSpec]:
    """The seam hook: apply any armed fault for ``seam``.

    With no plan armed this is one global load and an ``is None`` check —
    the zero-overhead contract that lets seams live on hot paths.
    Returns a cooperative :class:`FaultSpec` (``torn-write`` /
    ``stale-clock``) for the call site to apply, else ``None``.
    """
    injector = _INJECTOR
    if injector is _UNRESOLVED:
        injector = _resolve()
    if injector is None:
        return None
    return injector.fire(seam, ctx or None)


def maybe_torn(seam: str, data, **ctx: Any):
    """Writer cooperation: return ``data``, torn in half if the seam fires.

    ``data`` may be ``str`` or ``bytes``; a torn payload keeps at least one
    unit so the write is partial, never empty (an empty file is a different
    failure than a torn one).
    """
    spec = fault_point(seam, **ctx)
    if spec is not None and spec.shape == "torn-write":
        return data[:max(1, len(data) // 2)]
    return data


def read_fault_journal(path: str | Path) -> List[Dict[str, Any]]:
    """All journaled firings; tolerates a torn trailing line like any JSONL."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue   # torn by a kill mid-append: the record is lost, not the file
    return records
