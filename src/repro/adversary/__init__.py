"""T-bounded adversary substrate (Section 1.1 adversarial model)."""

from repro.adversary.base import Adversary, AdversaryTiming, Corruption, NullAdversary
from repro.adversary.budget import BudgetLedger
from repro.adversary.strategies import (
    ADVERSARY_REGISTRY,
    BalancingAdversary,
    HidingAdversary,
    RandomCorruptionAdversary,
    RevivingAdversary,
    StickyAdversary,
    SwitchingAdversary,
    TargetedMedianAdversary,
    make_adversary,
)

__all__ = [
    "Adversary",
    "AdversaryTiming",
    "Corruption",
    "NullAdversary",
    "BudgetLedger",
    "ADVERSARY_REGISTRY",
    "make_adversary",
    "BalancingAdversary",
    "RevivingAdversary",
    "HidingAdversary",
    "SwitchingAdversary",
    "RandomCorruptionAdversary",
    "TargetedMedianAdversary",
    "StickyAdversary",
]
