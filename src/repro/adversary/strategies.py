"""Concrete T-bounded adversary strategies.

Each strategy implements a counter-strategy discussed (or implied) by the
paper:

* :class:`BalancingAdversary` — tries to keep the two leading values in
  perfect balance by moving processes from the leading value to the trailing
  one.  This is the strategy behind the paper's remark that ``T = Ω~(sqrt n)``
  would prevent stabilization ("the adversary could keep two groups of
  processes with equal values in perfect balance").  With ``T ≤ sqrt(n)`` the
  median rule beats it (Theorems 2, 3, 10).
* :class:`RevivingAdversary` — re-introduces an extinct (usually extreme)
  value; this is exactly the attack that breaks the minimum rule (Section
  1.1) and that the median rule shrugs off.
* :class:`HidingAdversary` — parks a reservoir of processes on a value and
  keeps re-asserting it every round ("hiding values for an unbounded amount
  of time", Section 1.2).
* :class:`SwitchingAdversary` — alternates the corrupted processes between
  the two extreme initial values each round ("switching values").
* :class:`RandomCorruptionAdversary` — rewrites T uniformly random processes
  to uniformly random admissible values (a noise baseline).
* :class:`TargetedMedianAdversary` — always drags processes that currently
  hold the median value to the farthest extreme, attacking the rule's pivot.
* :class:`StickyAdversary` — picks T fixed victim processes once and pins
  them to a fixed value forever (models Byzantine processes that simply never
  update).

All strategies only *propose*; :class:`~repro.adversary.base.Adversary`
enforces the budget and the initial-value-set constraint.

Every strategy also carries a count-space form (``propose_counts``) able to
drive the occupancy engines; the identity-tracking pair (sticky, hiding)
does so exactly by tracking its victims' *occupancy* instead of their
identities (:class:`_VictimOccupancyMixin`).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.adversary.base import Adversary, AdversaryTiming, Corruption, CountCorruption

__all__ = [
    "BalancingAdversary",
    "RevivingAdversary",
    "HidingAdversary",
    "SwitchingAdversary",
    "RandomCorruptionAdversary",
    "TargetedMedianAdversary",
    "StickyAdversary",
    "ADVERSARY_REGISTRY",
    "make_adversary",
]


#: numpy's ``multivariate_hypergeometric`` (and the scalar draw) refuse
#: populations of 10⁹ and beyond; at or above this total the victims are
#: drawn as distinct uniform positions instead (see ``_victims_per_bin``).
_MVH_POPULATION_LIMIT = 1_000_000_000


def _victims_per_bin(counts: np.ndarray, size: int,
                     rng: np.random.Generator) -> np.ndarray:
    """How many of ``size`` uniformly-drawn distinct victims fall in each bin.

    Drawing T victim processes uniformly without replacement and grouping
    them by current value is exactly a multivariate hypergeometric draw over
    the bin loads — the count-space twin of ``rng.choice(n, T, replace=False)``.

    numpy's sampler refuses populations ≥ 10⁹ (exactly the regime the
    occupancy engine exists for).  Beyond that the victims are sampled as
    distinct uniform *positions* in ``[0, total)`` — all ``size`` uniforms
    drawn at once, collisions rejected and redrawn (a uniformly random
    ``size``-subset, i.e. the identical law; with ``size ≤ T ≪ n`` the
    expected number of redraw passes is ~1) — and grouped with a single
    ``searchsorted`` over the cumulative loads, instead of an O(size·m)
    per-victim loop recomputing the cumsum.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    size = min(int(size), total)
    if size <= 0:
        return np.zeros(counts.shape[0], dtype=np.int64)
    if total < _MVH_POPULATION_LIMIT:
        return rng.multivariate_hypergeometric(counts, size).astype(np.int64)
    positions = np.unique(rng.integers(0, total, size=size))
    while positions.shape[0] < size:
        extra = rng.integers(0, total, size=size - positions.shape[0])
        positions = np.unique(np.concatenate([positions, extra]))
    bins = np.searchsorted(np.cumsum(counts), positions, side="right")
    return np.bincount(bins, minlength=counts.shape[0]).astype(np.int64)


class BalancingAdversary(Adversary):
    """Keep the top two values as balanced as possible.

    Each round the strategy finds the two most loaded values, computes their
    gap, and moves up to ``min(T, ceil(gap/2))`` processes from the leading
    value to the trailing one.  When only one value remains it spends the
    budget re-seeding the second-most-recent value (so a consensus can never
    be *exact*, only almost stable — matching the paper's definition).
    """

    def __init__(self, budget: int,
                 timing: AdversaryTiming = AdversaryTiming.BEFORE_SAMPLING) -> None:
        super().__init__(budget=budget, timing=timing)
        self._last_runner_up: Optional[int] = None

    def reset(self) -> None:
        super().reset()
        self._last_runner_up = None

    def propose(self, values: np.ndarray, round_index: int,
                admissible_values: np.ndarray, rng: np.random.Generator) -> Corruption:
        uniq, counts = np.unique(values, return_counts=True)
        order = np.argsort(-counts, kind="stable")
        leader = int(uniq[order[0]])

        if uniq.shape[0] >= 2:
            runner_up = int(uniq[order[1]])
            self._last_runner_up = runner_up
            gap = int(counts[order[0]]) - int(counts[order[1]])
            want = min(self.budget, max((gap + 1) // 2, 0))
        else:
            # consensus reached: re-seed a different admissible value
            others = admissible_values[admissible_values != leader]
            if others.shape[0] == 0:
                return Corruption.empty()
            if self._last_runner_up is not None and self._last_runner_up in others:
                runner_up = self._last_runner_up
            else:
                runner_up = int(others[0])
            want = self.budget

        if want <= 0:
            return Corruption.empty()
        leaders = np.flatnonzero(values == leader)
        if leaders.shape[0] == 0:
            return Corruption.empty()
        victims = rng.choice(leaders, size=min(want, leaders.shape[0]), replace=False)
        return Corruption(indices=victims,
                          values=np.full(victims.shape[0], runner_up, dtype=np.int64))


    def propose_counts(self, support: np.ndarray, counts: np.ndarray, round_index: int,
                       admissible_values: np.ndarray, rng: np.random.Generator
                       ) -> CountCorruption:
        # Mirrors `propose` exactly: which holders of the leader get rewritten
        # is irrelevant in count space, so the move is a deterministic mass
        # transfer from the leader bin to the runner-up bin.
        nz = np.flatnonzero(counts > 0)
        if nz.shape[0] == 0:
            return CountCorruption.empty()
        order = nz[np.argsort(-counts[nz], kind="stable")]
        leader = int(support[order[0]])

        if order.shape[0] >= 2:
            runner_up = int(support[order[1]])
            self._last_runner_up = runner_up
            gap = int(counts[order[0]]) - int(counts[order[1]])
            want = min(self.budget, max((gap + 1) // 2, 0))
        else:
            others = admissible_values[admissible_values != leader]
            if others.shape[0] == 0:
                return CountCorruption.empty()
            if self._last_runner_up is not None and self._last_runner_up in others:
                runner_up = self._last_runner_up
            else:
                runner_up = int(others[0])
            want = self.budget

        if want <= 0:
            return CountCorruption.empty()
        return CountCorruption(src_values=[leader], dst_values=[runner_up],
                               amounts=[want])


class RevivingAdversary(Adversary):
    """Re-introduce an extinct value once agreement looks settled.

    The strategy waits ``delay`` rounds, then every round flips up to ``T``
    processes of the current plurality value to ``target_value`` (by default
    the smallest admissible value — the one the minimum rule would
    irreversibly chase).  Against the minimum rule one such write eventually
    flips the whole system; against the median rule the write is absorbed.
    """

    def __init__(self, budget: int, delay: int = 0, target_value: Optional[int] = None,
                 timing: AdversaryTiming = AdversaryTiming.BEFORE_SAMPLING) -> None:
        super().__init__(budget=budget, timing=timing)
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = int(delay)
        self.target_value = target_value

    def propose(self, values: np.ndarray, round_index: int,
                admissible_values: np.ndarray, rng: np.random.Generator) -> Corruption:
        if round_index < self.delay:
            return Corruption.empty()
        target = int(admissible_values.min()) if self.target_value is None \
            else int(self.target_value)
        candidates = np.flatnonzero(values != target)
        if candidates.shape[0] == 0:
            return Corruption.empty()
        victims = rng.choice(candidates, size=min(self.budget, candidates.shape[0]),
                             replace=False)
        return Corruption(indices=victims,
                          values=np.full(victims.shape[0], target, dtype=np.int64))

    def propose_counts(self, support: np.ndarray, counts: np.ndarray, round_index: int,
                       admissible_values: np.ndarray, rng: np.random.Generator
                       ) -> CountCorruption:
        if round_index < self.delay:
            return CountCorruption.empty()
        target = int(admissible_values.min()) if self.target_value is None \
            else int(self.target_value)
        # victims are uniform among processes *not* holding the target
        candidate_counts = np.where(support == target, 0, counts)
        per_bin = _victims_per_bin(candidate_counts, self.budget, rng)
        src = support[per_bin > 0]
        amounts = per_bin[per_bin > 0]
        return CountCorruption(src_values=src,
                               dst_values=np.full(src.shape[0], target, dtype=np.int64),
                               amounts=amounts)


class _VictimOccupancyMixin:
    """Count-space form of the identity-tracking strategies (sticky, hiding).

    A fixed victim set re-pinned to one value every round depends on process
    identities only through the victims' current *occupancy*: the initial
    uniform victim choice is a multivariate-hypergeometric split of the bin
    loads, each corruption is the deterministic count edit "move every victim
    to the pinned value", and between corruptions the victims' occupancy
    evolves by the same per-class scatter as everyone else's.  The occupancy
    engines realize that last step exactly by scattering the victim
    subpopulation separately (:func:`repro.engine.occupancy.occupancy_round_split`)
    and reporting the victims' new occupancy back through
    :meth:`observe_victim_scatter` — so the count-space form is equal in law
    to the vectorized one, not an approximation.

    State is a ``{value: victim count}`` mapping (``None`` before the victims
    are chosen); subclasses call :meth:`_propose_pinned_counts` from their
    ``propose_counts``.
    """

    _victim_loads: Optional[Dict[int, int]] = None

    def victim_counts(self, support: np.ndarray) -> Optional[np.ndarray]:
        if self._victim_loads is None:
            return None
        support = np.asarray(support, dtype=np.int64)
        out = np.zeros(support.shape[0], dtype=np.int64)
        for value, cnt in self._victim_loads.items():
            i = int(np.searchsorted(support, value))
            if i < support.shape[0] and support[i] == value:
                out[i] = cnt
        return out

    def observe_victim_scatter(self, support: np.ndarray,
                               victim_counts: np.ndarray) -> None:
        if self._victim_loads is None:
            return  # victims not chosen yet (e.g. first round, AFTER_SAMPLING)
        victim_counts = np.asarray(victim_counts, dtype=np.int64)
        self._victim_loads = {int(v): int(c)
                              for v, c in zip(support, victim_counts) if c > 0}

    def _propose_pinned_counts(self, support: np.ndarray, counts: np.ndarray,
                               target: int, admissible_values: np.ndarray,
                               rng: np.random.Generator) -> CountCorruption:
        if self._victim_loads is None:
            # victims are chosen once, uniformly among all processes — the
            # count-space twin of rng.choice(n, T, replace=False)
            per_bin = _victims_per_bin(counts, self.budget, rng)
            self._victim_loads = {int(v): int(c)
                                  for v, c in zip(support, per_bin) if c > 0}
        else:
            per_bin = self.victim_counts(support)
        if target not in admissible_values:
            # the enforcement wrapper would drop every write (matching the
            # vectorized path, where inadmissible values are filtered); the
            # victims stay tracked but unpinned
            return CountCorruption.empty()
        total = int(per_bin.sum())
        if total > 0:
            self._victim_loads = {int(target): total}
        mask = per_bin > 0
        src = np.asarray(support, dtype=np.int64)[mask]
        return CountCorruption(
            src_values=src,
            dst_values=np.full(src.shape[0], target, dtype=np.int64),
            amounts=per_bin[mask])


class HidingAdversary(_VictimOccupancyMixin, Adversary):
    """Maintain a hidden reservoir of processes pinned to a chosen value.

    The same ``T`` victim processes are re-pinned every round to
    ``hidden_value`` (default: the largest admissible value), modelling the
    "hiding values for an unbounded amount of time" counter-strategy.
    """

    def __init__(self, budget: int, hidden_value: Optional[int] = None,
                 timing: AdversaryTiming = AdversaryTiming.BEFORE_SAMPLING) -> None:
        super().__init__(budget=budget, timing=timing)
        self.hidden_value = hidden_value
        self._victims: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._victims = None
        self._victim_loads = None

    def propose(self, values: np.ndarray, round_index: int,
                admissible_values: np.ndarray, rng: np.random.Generator) -> Corruption:
        target = int(admissible_values.max()) if self.hidden_value is None \
            else int(self.hidden_value)
        if self._victims is None or self._victims.shape[0] != min(self.budget, values.shape[0]):
            self._victims = rng.choice(values.shape[0],
                                       size=min(self.budget, values.shape[0]),
                                       replace=False)
        return Corruption(indices=self._victims,
                          values=np.full(self._victims.shape[0], target, dtype=np.int64))

    def propose_counts(self, support: np.ndarray, counts: np.ndarray, round_index: int,
                       admissible_values: np.ndarray, rng: np.random.Generator
                       ) -> CountCorruption:
        target = int(admissible_values.max()) if self.hidden_value is None \
            else int(self.hidden_value)
        return self._propose_pinned_counts(support, counts, target,
                                           admissible_values, rng)


class SwitchingAdversary(Adversary):
    """Alternate corrupted processes between the two extreme initial values.

    On even rounds the victims are written to the smallest admissible value,
    on odd rounds to the largest ("switching values" of Section 1.2).  Fresh
    victims are drawn every round.
    """

    def propose(self, values: np.ndarray, round_index: int,
                admissible_values: np.ndarray, rng: np.random.Generator) -> Corruption:
        target = int(admissible_values.min()) if round_index % 2 == 0 \
            else int(admissible_values.max())
        victims = rng.choice(values.shape[0], size=min(self.budget, values.shape[0]),
                             replace=False)
        return Corruption(indices=victims,
                          values=np.full(victims.shape[0], target, dtype=np.int64))

    def propose_counts(self, support: np.ndarray, counts: np.ndarray, round_index: int,
                       admissible_values: np.ndarray, rng: np.random.Generator
                       ) -> CountCorruption:
        target = int(admissible_values.min()) if round_index % 2 == 0 \
            else int(admissible_values.max())
        per_bin = _victims_per_bin(counts, self.budget, rng)
        src = support[per_bin > 0]
        amounts = per_bin[per_bin > 0]
        return CountCorruption(src_values=src,
                               dst_values=np.full(src.shape[0], target, dtype=np.int64),
                               amounts=amounts)


class RandomCorruptionAdversary(Adversary):
    """Rewrite T uniformly random processes to uniformly random admissible values."""

    def propose(self, values: np.ndarray, round_index: int,
                admissible_values: np.ndarray, rng: np.random.Generator) -> Corruption:
        victims = rng.choice(values.shape[0], size=min(self.budget, values.shape[0]),
                             replace=False)
        new_vals = rng.choice(admissible_values, size=victims.shape[0], replace=True)
        return Corruption(indices=victims, values=new_vals)

    def propose_counts(self, support: np.ndarray, counts: np.ndarray, round_index: int,
                       admissible_values: np.ndarray, rng: np.random.Generator
                       ) -> CountCorruption:
        per_bin = _victims_per_bin(counts, self.budget, rng)
        uniform = np.full(admissible_values.shape[0],
                          1.0 / admissible_values.shape[0])
        src_list, dst_list, amount_list = [], [], []
        for i in np.flatnonzero(per_bin):
            # each victim from this bin independently picks a uniform
            # admissible value, exactly as in the per-process proposal
            split = rng.multinomial(int(per_bin[i]), uniform)
            for j in np.flatnonzero(split):
                src_list.append(int(support[i]))
                dst_list.append(int(admissible_values[j]))
                amount_list.append(int(split[j]))
        return CountCorruption(src_values=src_list, dst_values=dst_list,
                               amounts=amount_list)


class TargetedMedianAdversary(Adversary):
    """Attack the pivot: push processes holding the current median value outward.

    Every round the strategy identifies the median value of the current
    configuration and rewrites up to T of its holders to whichever admissible
    extreme (min or max) is farther from the median, trying to destabilize
    the quantity the rule converges around.
    """

    def propose(self, values: np.ndarray, round_index: int,
                admissible_values: np.ndarray, rng: np.random.Generator) -> Corruption:
        median_val = int(np.sort(values)[(values.shape[0] - 1) // 2])
        lo, hi = int(admissible_values.min()), int(admissible_values.max())
        target = hi if (hi - median_val) >= (median_val - lo) else lo
        holders = np.flatnonzero(values == median_val)
        if holders.shape[0] == 0:
            holders = np.arange(values.shape[0])
        victims = rng.choice(holders, size=min(self.budget, holders.shape[0]), replace=False)
        return Corruption(indices=victims,
                          values=np.full(victims.shape[0], target, dtype=np.int64))

    def propose_counts(self, support: np.ndarray, counts: np.ndarray, round_index: int,
                       admissible_values: np.ndarray, rng: np.random.Generator
                       ) -> CountCorruption:
        cum = np.cumsum(counts)
        n = int(cum[-1])
        # searchsorted can only land on a bin whose count is positive (a zero
        # bin repeats the previous cumulative value), so holders > 0 always
        med_idx = int(np.searchsorted(cum, (n - 1) // 2 + 1))
        median_val = int(support[med_idx])
        lo, hi = int(admissible_values.min()), int(admissible_values.max())
        target = hi if (hi - median_val) >= (median_val - lo) else lo
        holders = int(counts[med_idx])
        return CountCorruption(src_values=[median_val], dst_values=[target],
                               amounts=[min(self.budget, holders)])


class StickyAdversary(_VictimOccupancyMixin, Adversary):
    """T fixed Byzantine processes that never update and always assert one value.

    Victims are chosen once (uniformly at random) on the first round and then
    pinned to ``pinned_value`` (default: the largest admissible value) in
    every round.  This models crash-into-stuck / classic Byzantine behaviour
    rather than an adaptive attacker.
    """

    def __init__(self, budget: int, pinned_value: Optional[int] = None,
                 timing: AdversaryTiming = AdversaryTiming.BEFORE_SAMPLING) -> None:
        super().__init__(budget=budget, timing=timing)
        self.pinned_value = pinned_value
        self._victims: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._victims = None
        self._victim_loads = None

    def propose(self, values: np.ndarray, round_index: int,
                admissible_values: np.ndarray, rng: np.random.Generator) -> Corruption:
        target = int(admissible_values.max()) if self.pinned_value is None \
            else int(self.pinned_value)
        if self._victims is None:
            self._victims = rng.choice(values.shape[0],
                                       size=min(self.budget, values.shape[0]),
                                       replace=False)
        return Corruption(indices=self._victims,
                          values=np.full(self._victims.shape[0], target, dtype=np.int64))

    def propose_counts(self, support: np.ndarray, counts: np.ndarray, round_index: int,
                       admissible_values: np.ndarray, rng: np.random.Generator
                       ) -> CountCorruption:
        target = int(admissible_values.max()) if self.pinned_value is None \
            else int(self.pinned_value)
        return self._propose_pinned_counts(support, counts, target,
                                           admissible_values, rng)


#: Registry of adversary strategies by name (for experiment configuration).
ADVERSARY_REGISTRY = {
    "null": None,  # handled specially by make_adversary
    "balancing": BalancingAdversary,
    "reviving": RevivingAdversary,
    "hiding": HidingAdversary,
    "switching": SwitchingAdversary,
    "random": RandomCorruptionAdversary,
    "targeted-median": TargetedMedianAdversary,
    "sticky": StickyAdversary,
}


def make_adversary(name: str, budget: int = 0, **kwargs) -> Adversary:
    """Instantiate an adversary by registry name.

    ``make_adversary("null")`` (or any name with ``budget=0``) returns a
    :class:`~repro.adversary.base.NullAdversary`.
    """
    from repro.adversary.base import NullAdversary

    if name not in ADVERSARY_REGISTRY:
        raise KeyError(f"unknown adversary {name!r}; available: {sorted(ADVERSARY_REGISTRY)}")
    if name == "null" or budget == 0:
        return NullAdversary()
    cls = ADVERSARY_REGISTRY[name]
    return cls(budget=budget, **kwargs)
