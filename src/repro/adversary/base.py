"""T-bounded adversary interface.

The paper's adversarial model (Section 1.1):

    A T-bounded adversary is allowed to know the entire history of the
    protocol.  At the beginning of each round, it may decide to change the
    state of up to T many of the processes in an arbitrary way subject to the
    constraint that it can only change the value of a process to one out of
    the initial set of values {v_1, ..., v_n}.

Adversaries in this library receive the full current value vector (they are
adaptive and omniscient about the state and history), the round number, the
set of admissible values, and a per-round budget ``T``; they return a set of
(process index, new value) writes.  :class:`Adversary.corrupt` enforces the
budget and the value-set constraint regardless of what the strategy proposes,
so no strategy can exceed the model even by accident; every application is
also recorded in a :class:`~repro.adversary.budget.BudgetLedger` for auditing
by tests and experiments.

Section 3 additionally considers an adversary that acts *after* the random
choices of the round (it "is allowed to change the choices of at most sqrt(n)
balls").  Both placements are supported through the ``timing`` attribute and
the simulators honour it; the ablation benchmark compares them.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adversary.budget import BudgetLedger
from repro.core.state import Configuration

__all__ = ["AdversaryTiming", "Corruption", "CountCorruption", "Adversary", "NullAdversary"]


class AdversaryTiming(enum.Enum):
    """When in the round the adversary rewrites states.

    ``BEFORE_SAMPLING`` is the model of Section 1.1 (state changed at the
    beginning of the round, before processes draw their contacts);
    ``AFTER_SAMPLING`` is the Section 3 variant (the adversary reacts to the
    drawn choices).  Against an omniscient adversary the two are equally
    strong for the strategies shipped here, which is verified empirically by
    the ablation benchmark.
    """

    BEFORE_SAMPLING = "before-sampling"
    AFTER_SAMPLING = "after-sampling"


@dataclass(frozen=True)
class Corruption:
    """A batch of adversarial writes for one round."""

    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        idx = np.asarray(self.indices, dtype=np.int64).ravel()
        val = np.asarray(self.values, dtype=np.int64).ravel()
        if idx.shape[0] != val.shape[0]:
            raise ValueError("indices and values must have equal length")
        object.__setattr__(self, "indices", idx)
        object.__setattr__(self, "values", val)

    @property
    def count(self) -> int:
        return int(self.indices.shape[0])

    @classmethod
    def empty(cls) -> "Corruption":
        return cls(indices=np.empty(0, dtype=np.int64), values=np.empty(0, dtype=np.int64))


@dataclass(frozen=True)
class CountCorruption:
    """A batch of adversarial *count edits* for one round of the occupancy engine.

    Each entry moves ``amounts[i]`` processes from value ``src_values[i]`` to
    value ``dst_values[i]``.  This is the occupancy-space equivalent of a
    :class:`Corruption`: rewriting a process's value is exactly a unit of mass
    moved between two bins, so a T-bounded adversary is one whose amounts sum
    to at most T per round.
    """

    src_values: np.ndarray
    dst_values: np.ndarray
    amounts: np.ndarray

    def __post_init__(self) -> None:
        src = np.asarray(self.src_values, dtype=np.int64).ravel()
        dst = np.asarray(self.dst_values, dtype=np.int64).ravel()
        amt = np.asarray(self.amounts, dtype=np.int64).ravel()
        if not (src.shape[0] == dst.shape[0] == amt.shape[0]):
            raise ValueError("src_values, dst_values and amounts must have equal length")
        object.__setattr__(self, "src_values", src)
        object.__setattr__(self, "dst_values", dst)
        object.__setattr__(self, "amounts", amt)

    @property
    def total(self) -> int:
        return int(self.amounts.sum()) if self.amounts.size else 0

    @classmethod
    def empty(cls) -> "CountCorruption":
        z = np.empty(0, dtype=np.int64)
        return cls(src_values=z, dst_values=z, amounts=z)


class Adversary(abc.ABC):
    """Base class for T-bounded adversaries.

    Parameters
    ----------
    budget:
        Maximum number of processes the adversary may rewrite per round
        (the paper's ``T``).  ``0`` disables the adversary.
    timing:
        Whether the corruption happens before or after the round's sampling
        step (see :class:`AdversaryTiming`).
    """

    def __init__(self, budget: int,
                 timing: AdversaryTiming = AdversaryTiming.BEFORE_SAMPLING) -> None:
        if budget < 0:
            raise ValueError("adversary budget must be non-negative")
        self.budget = int(budget)
        self.timing = timing
        self.ledger = BudgetLedger(budget=self.budget)

    # ------------------------------------------------------------------ #
    # strategy interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def propose(
        self,
        values: np.ndarray,
        round_index: int,
        admissible_values: np.ndarray,
        rng: np.random.Generator,
    ) -> Corruption:
        """Propose this round's writes.

        Implementations may return more writes than the budget allows or
        values outside the admissible set; :meth:`corrupt` clips and filters
        the proposal so the T-bounded model is never violated.
        """

    # ------------------------------------------------------------------ #
    # enforcement wrapper — the only entry point simulators call
    # ------------------------------------------------------------------ #
    def corrupt(
        self,
        values: np.ndarray,
        round_index: int,
        admissible_values: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply the (budget- and value-constrained) corruption for one round.

        Returns a **new** value vector; the input is never mutated.
        """
        values = np.asarray(values, dtype=np.int64)
        admissible = np.unique(np.asarray(admissible_values, dtype=np.int64))
        if self.budget == 0 or admissible.shape[0] == 0:
            self.ledger.record(round_index, 0)
            return np.array(values)

        proposal = self.propose(values, round_index, admissible, rng)
        idx = proposal.indices
        val = proposal.values

        if idx.shape[0]:
            # Drop out-of-range indices and inadmissible values, then clip to
            # the per-round budget (keeping the strategy's preferred order).
            in_range = (idx >= 0) & (idx < values.shape[0])
            admissible_mask = np.isin(val, admissible)
            keep = in_range & admissible_mask
            idx, val = idx[keep], val[keep]
            # de-duplicate process indices, keeping the first write for each
            _, first = np.unique(idx, return_index=True)
            first.sort()
            idx, val = idx[first], val[first]
            if idx.shape[0] > self.budget:
                idx, val = idx[: self.budget], val[: self.budget]

        out = np.array(values)
        if idx.shape[0]:
            out[idx] = val
        self.ledger.record(round_index, int(idx.shape[0]))
        return out

    # ------------------------------------------------------------------ #
    # occupancy-space (count-edit) interface
    # ------------------------------------------------------------------ #
    def propose_counts(
        self,
        support: np.ndarray,
        counts: np.ndarray,
        round_index: int,
        admissible_values: np.ndarray,
        rng: np.random.Generator,
    ) -> Optional[CountCorruption]:
        """Propose this round's writes as count edits over the value support.

        Strategies whose behaviour depends on the configuration only through
        its occupancy vector override this (balancing, reviving, switching,
        random, targeted-median); the override must be *distributionally
        equivalent* to :meth:`propose` applied to any expansion of the counts.
        Identity-tracking strategies (sticky, hiding) override it too, by
        tracking the *occupancy* of their victim set instead of victim
        identities (see :meth:`victim_counts` /
        :meth:`observe_victim_scatter` — the engines scatter the victim
        subpopulation separately, which keeps the tracking exact).  Custom
        identity-tracking adversaries without such a form keep the default,
        which returns ``None`` so the occupancy engine can fail fast with a
        clear error.
        """
        return None

    # ------------------------------------------------------------------ #
    # victim-occupancy tracking (identity-tracking strategies in count space)
    # ------------------------------------------------------------------ #
    def victim_counts(self, support: np.ndarray) -> Optional[np.ndarray]:
        """Current occupancy of this adversary's victim set over ``support``.

        ``None`` (the default) means the adversary does not track a victim
        subpopulation and the engines run their plain fused scatter.  An
        adversary returning an array here asks the occupancy engines to
        scatter its victims *separately* each round
        (:func:`repro.engine.occupancy.occupancy_round_split`) and to report
        the victims' post-round occupancy back through
        :meth:`observe_victim_scatter` — conditionally on the pre-round
        occupancy all per-process updates are independent, so the two-part
        scatter is distributionally identical to the combined one and the
        victim occupancy stays exactly the law of the vectorized engine's
        victim values.
        """
        return None

    def observe_victim_scatter(self, support: np.ndarray,
                               victim_counts: np.ndarray) -> None:
        """Receive the victims' occupancy after a round's scatter (no-op here)."""

    @property
    def supports_counts(self) -> bool:
        """True iff this adversary can drive the occupancy-space engine."""
        if self.budget == 0:
            return True
        return type(self).propose_counts is not Adversary.propose_counts

    def corrupt_counts(
        self,
        support: np.ndarray,
        counts: np.ndarray,
        round_index: int,
        admissible_values: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply the budget- and value-constrained count edits for one round.

        The occupancy-space twin of :meth:`corrupt`: clips the proposal to the
        per-round budget, drops moves from absent bins or to inadmissible
        values, never lets a bin go negative, and records the number of
        processes actually rewritten in the same :class:`BudgetLedger`.
        Returns a **new** counts array; the input is never mutated.
        """
        support = np.asarray(support, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        admissible = np.unique(np.asarray(admissible_values, dtype=np.int64))
        out = np.array(counts)
        if self.budget == 0 or admissible.shape[0] == 0:
            self.ledger.record(round_index, 0)
            return out

        proposal = self.propose_counts(support, counts, round_index, admissible, rng)
        if proposal is None:
            raise NotImplementedError(
                f"{type(self).__name__} tracks process identities and has no "
                "occupancy-space (count-edit) form; use the vectorized engine"
            )

        spent = 0
        for src, dst, amount in zip(proposal.src_values, proposal.dst_values,
                                    proposal.amounts):
            if spent >= self.budget or amount <= 0:
                continue
            if dst not in admissible:
                continue
            si = int(np.searchsorted(support, src))
            di = int(np.searchsorted(support, dst))
            if si >= support.shape[0] or support[si] != src:
                continue
            if di >= support.shape[0] or support[di] != dst:
                continue
            move = int(min(amount, self.budget - spent, out[si]))
            if move <= 0:
                continue
            out[si] -= move
            out[di] += move
            spent += move
        self.ledger.record(round_index, spent)
        return out

    def reset(self) -> None:
        """Clear per-run internal state (ledger and any strategy memory)."""
        self.ledger = BudgetLedger(budget=self.budget)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(budget={self.budget}, timing={self.timing.value})"


class NullAdversary(Adversary):
    """An adversary that never corrupts anything (the no-adversary baseline)."""

    def __init__(self) -> None:
        super().__init__(budget=0)

    def propose(self, values: np.ndarray, round_index: int,
                admissible_values: np.ndarray, rng: np.random.Generator) -> Corruption:
        return Corruption.empty()
