"""Per-round budget accounting for T-bounded adversaries.

Every call to :meth:`repro.adversary.base.Adversary.corrupt` records how many
processes it actually rewrote.  The ledger lets tests assert the T-bound was
never exceeded and lets experiments report how much of its budget an
adversary actually used (several strategies — e.g. the balancing adversary —
spend far less than ``T`` on most rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["BudgetLedger"]


@dataclass
class BudgetLedger:
    """Audit trail of adversarial writes, one entry per round."""

    budget: int
    per_round: Dict[int, int] = field(default_factory=dict)

    def record(self, round_index: int, count: int) -> None:
        """Record that ``count`` processes were rewritten in ``round_index``.

        Raises
        ------
        ValueError
            If the recorded count exceeds the budget (this indicates a bug in
            the enforcement wrapper, never in a strategy, since strategies are
            clipped before recording).
        """
        if count < 0:
            raise ValueError("corruption count cannot be negative")
        if count > self.budget:
            raise ValueError(
                f"round {round_index}: recorded {count} corruptions exceeding budget {self.budget}"
            )
        self.per_round[int(round_index)] = self.per_round.get(int(round_index), 0) + int(count)
        if self.per_round[int(round_index)] > self.budget:
            raise ValueError(
                f"round {round_index}: cumulative corruptions "
                f"{self.per_round[int(round_index)]} exceed budget {self.budget}"
            )

    @property
    def total(self) -> int:
        """Total number of adversarial writes across all rounds."""
        return sum(self.per_round.values())

    @property
    def rounds_active(self) -> int:
        """Number of rounds in which at least one process was rewritten."""
        return sum(1 for c in self.per_round.values() if c > 0)

    def max_in_round(self) -> int:
        """Largest number of writes used in any single round (0 if none)."""
        return max(self.per_round.values(), default=0)

    def history(self) -> List[int]:
        """Writes per round as a dense list indexed by round (missing → 0)."""
        if not self.per_round:
            return []
        horizon = max(self.per_round) + 1
        return [self.per_round.get(t, 0) for t in range(horizon)]

    def verify(self) -> bool:
        """Return True iff no round exceeded the budget."""
        return all(c <= self.budget for c in self.per_round.values())
